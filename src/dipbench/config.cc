#include "src/dipbench/config.h"

#include "src/common/string_util.h"
#include "src/net/fault.h"

namespace dipbench {

const char* RealizationName(Realization r) {
  switch (r) {
    case Realization::kFullRecompute:
      return "full";
    case Realization::kIncremental:
      return "incremental";
  }
  return "?";
}

Result<Realization> ParseRealization(const std::string& name) {
  if (name == "full") return Realization::kFullRecompute;
  if (name == "incremental") return Realization::kIncremental;
  return Status::InvalidArgument("unknown realization '" + name +
                                 "' (expected \"full\" or \"incremental\")");
}

double TrafficShape::MultiplierFor(const std::string& stream, int period,
                                   int periods, uint64_t seed) const {
  switch (kind) {
    case Kind::kSteady:
      return scale;
    case Kind::kBurst: {
      // One private draw per (seed, stream, period): whether a period
      // bursts cannot depend on evaluation order or on other streams.
      Rng rng(seed ^ SeedHash("traffic/" + stream) ^
              (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(period + 1)));
      return rng.NextBool(burst_probability) ? amplitude : scale;
    }
    case Kind::kFlashSale: {
      int spike = spike_period >= 0 ? spike_period : periods / 2;
      if (period == spike) return amplitude;
      if (period == spike - 1 || period == spike + 1) {
        return (scale + amplitude) / 2.0;
      }
      return scale;
    }
    case Kind::kRamp: {
      if (periods <= 1) return ramp_to;
      double f = static_cast<double>(period) / (periods - 1);
      return scale + (ramp_to - scale) * f;
    }
  }
  return scale;
}

Status ScaleConfig::CompileFaultPlan(net::FaultPlan* plan) const {
  // Endpoint overrides replace the defaults wholesale under FaultPlan's
  // ProfileFor, so a profile created for an endpoint-scoped entry starts
  // from a snapshot of the defaults' *base* rates, taken before any
  // default-scoped window below mutates them.
  const net::FaultProfile base = plan->defaults;
  auto profile_for = [&](const std::string& endpoint) -> net::FaultProfile* {
    if (endpoint.empty()) return &plan->defaults;
    auto [it, inserted] = plan->per_endpoint.try_emplace(endpoint, base);
    (void)inserted;
    return &it->second;
  };

  for (const OutageWindow& outage : outages) {
    net::FaultProfile* profile = profile_for(outage.endpoint);
    if (profile->outage_calls > 0) {
      return Status::InvalidArgument(
          "outage '" + outage.name + "': " +
          (outage.endpoint.empty() ? std::string("the default profile")
                                   : "endpoint '" + outage.endpoint + "'") +
          " already has an outage window");
    }
    profile->outage_after_calls = outage.after_calls;
    profile->outage_calls = outage.calls;
  }

  for (const ErrorPhaseSpec& phase : error_phases) {
    net::FaultProfile* profile = profile_for(phase.endpoint);
    profile->phases.push_back(
        net::FaultPhase{phase.after_calls, phase.calls, phase.error_rate});
  }
  return Status::OK();
}

namespace {

const char* ShapeKindName(TrafficShape::Kind kind) {
  switch (kind) {
    case TrafficShape::Kind::kSteady:
      return "steady";
    case TrafficShape::Kind::kBurst:
      return "burst";
    case TrafficShape::Kind::kFlashSale:
      return "flash_sale";
    case TrafficShape::Kind::kRamp:
      return "ramp";
  }
  return "?";
}

}  // namespace

std::string ScaleConfig::ToString() const {
  std::string out = StrFormat(
      "ScaleConfig{d=%.3f, t=%.2f, f=%s, periods=%d, seed=%llu, workers=%d",
      datasize, time_scale, DistributionToString(distribution), periods,
      static_cast<unsigned long long>(seed), worker_slots);
  // Fault/recovery knobs appear only when switched on, so the rendering of
  // every pre-existing configuration stays unchanged.
  if (fault_rate > 0.0 || fault_spike_rate > 0.0) {
    out += StrFormat(", q=%.3f, spike=%.3f@%.1ftu", fault_rate,
                     fault_spike_rate, fault_spike_tu);
  }
  if (retry_max_attempts > 1 || retry_dead_letter) {
    out += StrFormat(", retries=%d, backoff=%.1ftu, dead_letter=%s",
                     retry_max_attempts, retry_backoff_tu,
                     retry_dead_letter ? "on" : "off");
  }
  // datagen_jobs and the intra-run scheduler's workers never change the
  // produced bytes, so they render only when deviating from the serial
  // default (diagnostic, not identity).
  if (datagen_jobs > 1) {
    out += StrFormat(", datagen_jobs=%d", datagen_jobs);
  }
  if (workers > 1) {
    out += StrFormat(", exec_workers=%d", workers);
  }
  if (operator_memory_budget > 0) {
    out += StrFormat(", memory_budget=%llu",
                     static_cast<unsigned long long>(operator_memory_budget));
  }
  // The realization renders only when it deviates from the legacy default,
  // keeping every pre-existing config string byte-identical.
  if (realization != Realization::kFullRecompute) {
    out += StrFormat(", realization=%s", RealizationName(realization));
  }
  // Scenario-manifest extensions, rendered only when present.
  if (!traffic.empty()) {
    out += ", traffic={";
    bool first = true;
    for (const auto& [stream, shape] : traffic) {
      if (!first) out += ", ";
      first = false;
      out += stream + ":" + ShapeKindName(shape.kind);
      if (shape.late_fraction > 0.0 && shape.late_delay_tu > 0.0) {
        out += StrFormat("+late(%.0f%%@%.0ftu)", 100.0 * shape.late_fraction,
                         shape.late_delay_tu);
      }
    }
    out += "}";
  }
  if (!outages.empty() || !error_phases.empty()) {
    out += StrFormat(", outages=%zu, error_phases=%zu", outages.size(),
                     error_phases.size());
  }
  if (!source_error_rates.empty()) {
    out += StrFormat(", dirty_sources=%zu", source_error_rates.size());
  }
  out += "}";
  return out;
}

}  // namespace dipbench
