#include "src/dipbench/config.h"

#include "src/common/string_util.h"

namespace dipbench {

std::string ScaleConfig::ToString() const {
  std::string out = StrFormat(
      "ScaleConfig{d=%.3f, t=%.2f, f=%s, periods=%d, seed=%llu, workers=%d",
      datasize, time_scale, DistributionToString(distribution), periods,
      static_cast<unsigned long long>(seed), worker_slots);
  // Fault/recovery knobs appear only when switched on, so the rendering of
  // every pre-existing configuration stays unchanged.
  if (fault_rate > 0.0 || fault_spike_rate > 0.0) {
    out += StrFormat(", q=%.3f, spike=%.3f@%.1ftu", fault_rate,
                     fault_spike_rate, fault_spike_tu);
  }
  if (retry_max_attempts > 1 || retry_dead_letter) {
    out += StrFormat(", retries=%d, backoff=%.1ftu, dead_letter=%s",
                     retry_max_attempts, retry_backoff_tu,
                     retry_dead_letter ? "on" : "off");
  }
  out += "}";
  return out;
}

}  // namespace dipbench
