#ifndef DIPBENCH_DIPBENCH_MONITOR_H_
#define DIPBENCH_DIPBENCH_MONITOR_H_

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/dipbench/config.h"
#include "src/obs/metrics.h"

namespace dipbench {

/// Aggregated performance of one process type over a benchmark run —
/// the row behind one bar pair of the paper's Fig. 10/11 plots.
struct ProcessMetrics {
  std::string process_id;
  int instances = 0;
  int errors = 0;

  /// NAVG(p): average normalized cost per instance, in tu.
  double navg_tu = 0.0;
  /// Full standard deviation across instances, in tu (reference column —
  /// the paper's metric uses sigma+, below).
  double stddev_tu = 0.0;
  /// sigma+: the positive standard deviation — RMS deviation of the
  /// above-average instances only. The paper adds it to NAVG so that only
  /// slower-than-average outliers penalize the score; instances that beat
  /// the average must not *reduce* NAVG+ below NAVG.
  double sigma_plus_tu = 0.0;
  /// NAVG+(p) = NAVG + sigma+ — the paper's metric unit.
  double navg_plus_tu = 0.0;

  /// Cost-category averages (tu) for the breakdown analysis.
  double avg_cc_tu = 0.0;
  double avg_cm_tu = 0.0;
  double avg_cp_tu = 0.0;

  /// Average queueing delay before a worker picked the instance up (tu).
  double avg_wait_tu = 0.0;
  /// Average number of concurrently running instances while this type ran
  /// (1.0 = fully serialized) — the sweep-line diagnostic behind the cost
  /// normalization discussion in paper Section V.
  double avg_concurrency = 1.0;

  core::QualityCounters quality;
};

/// The toolsuite's Monitor: collects instance records from the system under
/// test, computes the NAVG+ metric per process type and renders the
/// performance plot / CSV output.
///
/// Cost normalization: the engine derives every cost category from work
/// performed (rows, XML nodes, round trips) rather than from wall-clock
/// time, so a process instance's cost is by construction independent of
/// what else was running — exactly the property Section V demands. The
/// concurrency that the paper's normalization removes is still *observable*
/// through avg_concurrency, and its legitimate performance impact (queue
/// waiting -> engine self-management) stays inside C_m.
class Monitor {
 public:
  explicit Monitor(const ScaleConfig& config) : config_(config) {}

  /// Appends a batch of instance records (typically once per run).
  void Collect(const std::vector<core::InstanceRecord>& records);

  size_t record_count() const { return records_.size(); }
  void Clear() { records_.clear(); }

  /// Per-process aggregation, ordered P01..P15 (process ids sorted).
  std::vector<ProcessMetrics> Summarize() const;

  /// Renders the DIPBench performance plot (paper Fig. 10/11) as an ASCII
  /// bar chart of NAVG+ and NAVG per process type.
  static std::string RenderPlot(const std::vector<ProcessMetrics>& metrics,
                                const ScaleConfig& config);

  /// Machine-readable output: one CSV row per process type. Fields are
  /// RFC-4180 escaped; the header row is generated from the same column
  /// table as the data rows, so the two cannot drift apart.
  static std::string ToCsv(const std::vector<ProcessMetrics>& metrics);

  /// Per-category cost percentiles next to NAVG+: consumes the
  /// instance.{cc,cm,cp,total,wait}_ms histograms an observed engine fills
  /// into `registry` (see EngineBase::SetObserver) and reports p50/p95/p99
  /// in tu. Returns a note when the registry holds no instance histograms.
  static std::string RenderPercentiles(const obs::MetricsRegistry& registry,
                                       const ScaleConfig& config);

  /// A self-contained gnuplot script (data inlined) that reproduces the
  /// paper's Fig. 10/11 bar plot — the Monitor's "plotting functions for
  /// the generation of performance diagrams".
  static std::string ToGnuplot(const std::vector<ProcessMetrics>& metrics,
                               const ScaleConfig& config);

  /// One (period, process) series point: NAVG over the instances of that
  /// process type within one benchmark period.
  struct PeriodPoint {
    int period = 0;
    std::string process_id;
    int instances = 0;
    double navg_tu = 0.0;
  };

  /// Per-period averages for one process type (trend analysis; e.g. the
  /// decreasing P01 volume across k, paper Fig. 8 left).
  std::vector<PeriodPoint> SummarizeByPeriod(
      const std::string& process_id) const;

  /// Per-record total overlap with every other record, in virtual ms:
  /// result[i] = sum over j != i of |[s_i, e_i) ∩ [s_j, e_j)|. Sweep-line
  /// over the sorted start/end events, O(n log n).
  static std::vector<double> OverlapTotals(
      const std::vector<core::InstanceRecord>& records);
  /// The O(n²) pairwise-intersection reference implementation. Kept for
  /// the bench/test assertion that the sweep line matches it exactly.
  static std::vector<double> OverlapTotalsNaive(
      const std::vector<core::InstanceRecord>& records);

 private:
  ScaleConfig config_;
  std::vector<core::InstanceRecord> records_;
};

}  // namespace dipbench

#endif  // DIPBENCH_DIPBENCH_MONITOR_H_
