#ifndef DIPBENCH_DIPBENCH_QUALITY_H_
#define DIPBENCH_DIPBENCH_QUALITY_H_

#include <string>

#include "src/common/result.h"
#include "src/dipbench/scenario.h"

namespace dipbench {

/// Data-quality assessment of the integrated warehouse — the paper's
/// future-work direction "we want to enhance the benchmark by integrating
/// quality and semantic issues". Run after a benchmark (post phase) to
/// quantify what the cleansing pipeline achieved.
struct DataQualityReport {
  // Volume.
  size_t fact_rows = 0;

  // Completeness: share of NULL cells in the fact table.
  size_t null_cells = 0;
  size_t total_cells = 0;
  double NullFraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(null_cells) / total_cells;
  }

  // Referential integrity of the snowflake.
  size_t dangling_customer_refs = 0;
  size_t dangling_product_refs = 0;
  size_t dangling_city_refs = 0;

  // Uniqueness (must be 0 — the PK enforces it; counted independently).
  size_t duplicate_fact_keys = 0;

  // Losses on the way in.
  size_t rejected_messages = 0;   ///< P10's failed-data destination
  size_t dirty_leftover_cdb = 0;  ///< unrepairable rows parked in the CDB

  /// fact_rows / (fact_rows + rejected + dirty leftover).
  double Completeness() const {
    size_t denom = fact_rows + rejected_messages + dirty_leftover_cdb;
    return denom == 0 ? 1.0 : static_cast<double>(fact_rows) / denom;
  }

  std::string ToString() const;
};

/// Walks the DWH fact table, the dimension tables and the CDB leftovers.
Result<DataQualityReport> AssessDataQuality(Scenario* scenario);

}  // namespace dipbench

#endif  // DIPBENCH_DIPBENCH_QUALITY_H_
