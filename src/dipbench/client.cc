#include "src/dipbench/client.h"

#include <algorithm>

#include "src/core/retry.h"
#include "src/dipbench/processes.h"
#include "src/ivm/ivm.h"
#include "src/net/fault.h"
#include "src/dipbench/schedule.h"
#include "src/storage/spill.h"

namespace dipbench {

std::string BenchmarkResult::RenderPlot() const {
  return Monitor::RenderPlot(per_process, config);
}

double BenchmarkResult::NavgPlus(const std::string& process_id) const {
  for (const auto& m : per_process) {
    if (m.process_id == process_id) return m.navg_plus_tu;
  }
  return 0.0;
}

namespace {

/// Render lane for the Client's period/stream spans — far above any
/// plausible worker-slot track id.
constexpr int kClientTrack = 96;

}  // namespace

Client::Client(Scenario* scenario, core::IntegrationSystem* engine,
               const ScaleConfig& config)
    : scenario_(scenario),
      engine_(engine),
      config_(config),
      initializer_(scenario, config) {}

void Client::SetObserver(obs::ObsContext obs) {
  obs_ = obs;
  if (obs_.trace() != nullptr) {
    obs_.trace()->NameTrack(kClientTrack, "client schedule");
  }
}

Status Client::DeployProcesses() {
  // The incremental Group C/D bodies call the src/ivm procedures and delta
  // queries; install them on the scenario before any instance can run.
  if (config_.realization == Realization::kIncremental) {
    DIP_RETURN_NOT_OK(ivm::InstallIncrementalMaintenance(scenario_));
  }
  for (const auto& def : BuildProcesses(config_.realization)) {
    Status st = engine_->Deploy(def);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  }
  return Status::OK();
}

Status Client::SubmitSeries(const std::string& process_id, int k,
                            double t0_ms) {
  // The shaped series equals Table II exactly when the config carries no
  // traffic shape for the process's stream (the compiled-in schedule).
  std::vector<double> series =
      Schedule::ShapedSeriesTu(process_id, k, config_);
  for (size_t m = 0; m < series.size(); ++m) {
    core::ProcessEvent ev;
    ev.process_id = process_id;
    ev.when = t0_ms + config_.TuToMs(series[m]);
    ev.period = k;
    ev.after_types = Schedule::Predecessors(process_id);
    int idx = static_cast<int>(m) + 1;
    if (process_id == "P01") {
      ev.message = initializer_.MakeBeijingCustomer(k, idx);
    } else if (process_id == "P02") {
      ev.message = initializer_.MakeMdmCustomer(k, idx);
    } else if (process_id == "P04") {
      ev.message = initializer_.MakeViennaOrder(k, idx);
    } else if (process_id == "P08") {
      ev.message = initializer_.MakeHongkongSale(k, idx);
    } else if (process_id == "P10") {
      ev.message = initializer_.MakeSanDiegoOrder(k, idx);
    }
    DIP_RETURN_NOT_OK(engine_->Submit(std::move(ev)));
  }
  return Status::OK();
}

Status Client::RunPeriod(int k) {
  obs::TraceRecorder* rec = obs_.trace();
  uint64_t period_span = 0;
  if (rec != nullptr) {
    period_span = rec->BeginSpan("period " + std::to_string(k),
                                 obs::Category::kNone, engine_->Now(),
                                 kClientTrack);
  }
  obs_.Count("client.periods");

  // Uninitialize all external systems + initialize the source systems.
  DIP_RETURN_NOT_OK(initializer_.InitializePeriod(k));

  const double gap = config_.TuToMs(Schedule::kChainGapTu);
  double t0 = engine_->Now() + gap;

  // Last event time of a (shaped) E1 series, for the dependency-driven
  // time events below. With late-arrival windows the series is no longer
  // monotone, so take the max rather than the final element; for the
  // unshaped schedule both are the same double.
  auto series_end = [&](const std::string& id) {
    double end = 0.0;
    for (double t : Schedule::ShapedSeriesTu(id, k, config_)) {
      end = std::max(end, t);
    }
    return end;
  };

  // --- Streams A and B (concurrent) ---
  DIP_RETURN_NOT_OK(SubmitSeries("P01", k, t0));
  DIP_RETURN_NOT_OK(SubmitSeries("P02", k, t0));
  DIP_RETURN_NOT_OK(SubmitSeries("P04", k, t0));
  DIP_RETURN_NOT_OK(SubmitSeries("P08", k, t0));
  DIP_RETURN_NOT_OK(SubmitSeries("P10", k, t0));

  auto single = [&](const std::string& id, double when) {
    core::ProcessEvent ev;
    ev.process_id = id;
    ev.when = when;
    ev.period = k;
    ev.after_types = Schedule::Predecessors(id);
    return engine_->Submit(std::move(ev));
  };

  // tau_1-driven time events, approximated on the schedule axis so they
  // interleave with the message streams.
  double end_a = std::max(series_end("P01"), series_end("P02"));
  DIP_RETURN_NOT_OK(single("P03", t0 + config_.TuToMs(end_a) + gap));
  double end_p04 = series_end("P04");
  DIP_RETURN_NOT_OK(single("P05", t0 + config_.TuToMs(end_p04) + gap));
  DIP_RETURN_NOT_OK(single("P06", t0 + config_.TuToMs(end_p04) + 2 * gap));
  DIP_RETURN_NOT_OK(single("P07", t0 + config_.TuToMs(end_p04) + 3 * gap));
  double end_p08 = series_end("P08");
  DIP_RETURN_NOT_OK(single("P09", t0 + config_.TuToMs(end_p08) + gap));
  uint64_t stream_ab = 0;
  if (rec != nullptr) {
    stream_ab = rec->BeginSpan("streams A+B", obs::Category::kNone, t0,
                               kClientTrack);
  }
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());

  // P11 = tau_1(Stream B): after the whole stream drained.
  DIP_RETURN_NOT_OK(single("P11", engine_->Now() + gap));
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());
  if (rec != nullptr) rec->EndSpan(stream_ab, engine_->Now());

  // --- Stream C (serialized) ---
  double t0_c = engine_->Now() + gap;
  uint64_t stream_c = 0;
  if (rec != nullptr) {
    stream_c = rec->BeginSpan("stream C", obs::Category::kNone, t0_c,
                              kClientTrack);
  }
  DIP_RETURN_NOT_OK(single("P12", t0_c));
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());
  DIP_RETURN_NOT_OK(single("P13", std::max(engine_->Now(),
                                           t0_c + config_.TuToMs(10.0))));
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());
  if (rec != nullptr) rec->EndSpan(stream_c, engine_->Now());

  // --- Stream D (serialized) ---
  uint64_t stream_d = 0;
  if (rec != nullptr) {
    stream_d = rec->BeginSpan("stream D", obs::Category::kNone,
                              engine_->Now() + gap, kClientTrack);
  }
  DIP_RETURN_NOT_OK(single("P14", engine_->Now() + gap));
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());
  DIP_RETURN_NOT_OK(single("P15", engine_->Now() + gap));
  DIP_RETURN_NOT_OK(engine_->RunUntilIdle());
  if (rec != nullptr) {
    rec->EndSpan(stream_d, engine_->Now());
    rec->EndSpan(period_span, engine_->Now());
  }
  return Status::OK();
}

Result<BenchmarkResult> Client::Run() {
  StopWatch watch;
  // --- pre phase ---
  DIP_RETURN_NOT_OK(DeployProcesses());
  engine_->Reset();

  // Fault injection + recovery. With the default config both calls are
  // no-ops: InstallFaults removes any injectors, the retry policy is the
  // legacy one-attempt/abort — the run stays byte-identical.
  net::FaultPlan faults = net::FaultPlan::Uniform(config_.fault_rate);
  faults.defaults.spike_rate = config_.fault_spike_rate;
  faults.defaults.spike_ms = config_.TuToMs(config_.fault_spike_tu);
  // Scenario-manifest fault composition: named outage windows and
  // error-rate phases compile onto the plan (no-op when the config
  // declares none).
  DIP_RETURN_NOT_OK(config_.CompileFaultPlan(&faults));
  scenario_->network()->InstallFaults(faults, config_.seed);

  core::RetryPolicy retry;
  retry.max_attempts = config_.retry_max_attempts;
  retry.backoff_base_ms = config_.TuToMs(config_.retry_backoff_tu);
  retry.backoff_factor = config_.retry_backoff_factor;
  retry.instance_timeout_ms = config_.TuToMs(config_.instance_timeout_tu);
  retry.dead_letter = config_.retry_dead_letter;
  engine_->SetRetryPolicy(retry);

  // Real execution threads inside each RunUntilIdle (the intra-run
  // scheduler). Pure execution dial: outputs are byte-identical for any
  // value, so the default 1 keeps the serial engine exactly.
  engine_->SetExecWorkers(config_.workers);

  // Operator memory budget for blocking plan operators, in effect for the
  // whole run (the wave scheduler re-applies it on its pool threads). Spill
  // telemetry lands in the run's metrics registry, never the cost ledger.
  ScopedMemoryBudget budget(config_.operator_memory_budget);
  ScopedSpillObserver spill_obs(obs_);

  // --- work phase ---
  for (int k = 0; k < config_.periods; ++k) {
    DIP_RETURN_NOT_OK(RunPeriod(k).WithContext(
        "period " + std::to_string(k)));
  }

  // --- post phase ---
  Monitor monitor(config_);
  monitor.Collect(engine_->records());
  BenchmarkResult result;
  result.config = config_;
  result.engine_name = engine_->name();
  result.per_process = monitor.Summarize();
  for (const auto& r : engine_->records()) {
    if (r.attempts > 1) result.retries += static_cast<uint64_t>(r.attempts - 1);
    if (r.dead_lettered) ++result.dead_letters;
  }
  DIP_ASSIGN_OR_RETURN(result.verification, VerifyIntegration(scenario_));
  result.virtual_ms = engine_->Now();
  result.wall_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace dipbench
