#include "src/dipbench/schedule.h"

#include <cmath>

namespace dipbench {

int Schedule::InstanceCount(const std::string& process_id, int k, double d) {
  if (process_id == "P01") {
    return static_cast<int>(std::floor((100.0 - k) * d / 5.0)) + 1;
  }
  if (process_id == "P02") {
    return static_cast<int>(std::floor((100.0 - k) * d / 10.0)) + 1;
  }
  if (process_id == "P04") return static_cast<int>(std::floor(1100 * d)) + 1;
  if (process_id == "P08") return static_cast<int>(std::floor(900 * d)) + 1;
  if (process_id == "P10") return static_cast<int>(std::floor(1050 * d)) + 1;
  return 1;  // single execution per period
}

std::vector<double> Schedule::SeriesTu(const std::string& process_id, int k,
                                       double d) {
  int n = InstanceCount(process_id, k, d);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int m = 1; m <= n; ++m) {
    if (process_id == "P01") {
      out.push_back(2.0 * (m - 1));
    } else if (process_id == "P02") {
      out.push_back(2.0 * m);
    } else if (process_id == "P04") {
      out.push_back(2.0 * (m - 1));
    } else if (process_id == "P08") {
      out.push_back(2000.0 + 3.0 * (m - 1));
    } else if (process_id == "P10") {
      out.push_back(3000.0 + 2.5 * (m - 1));
    } else {
      out.push_back(0.0);
    }
  }
  return out;
}

double Schedule::SeriesEndTu(const std::string& process_id, int k, double d) {
  auto series = SeriesTu(process_id, k, d);
  return series.empty() ? 0.0 : series.back();
}

}  // namespace dipbench
