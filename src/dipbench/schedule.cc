#include "src/dipbench/schedule.h"

#include <cmath>

namespace dipbench {

int Schedule::InstanceCount(const std::string& process_id, int k, double d) {
  if (process_id == "P01") {
    return static_cast<int>(std::floor((100.0 - k) * d / 5.0)) + 1;
  }
  if (process_id == "P02") {
    return static_cast<int>(std::floor((100.0 - k) * d / 10.0)) + 1;
  }
  if (process_id == "P04") return static_cast<int>(std::floor(1100 * d)) + 1;
  if (process_id == "P08") return static_cast<int>(std::floor(900 * d)) + 1;
  if (process_id == "P10") return static_cast<int>(std::floor(1050 * d)) + 1;
  return 1;  // single execution per period
}

std::vector<double> Schedule::SeriesTuN(const std::string& process_id, int n) {
  std::vector<double> out;
  if (n <= 0) return out;
  out.reserve(static_cast<size_t>(n));
  for (int m = 1; m <= n; ++m) {
    if (process_id == "P01") {
      out.push_back(2.0 * (m - 1));
    } else if (process_id == "P02") {
      out.push_back(2.0 * m);
    } else if (process_id == "P04") {
      out.push_back(2.0 * (m - 1));
    } else if (process_id == "P08") {
      out.push_back(2000.0 + 3.0 * (m - 1));
    } else if (process_id == "P10") {
      out.push_back(3000.0 + 2.5 * (m - 1));
    } else {
      out.push_back(0.0);
    }
  }
  return out;
}

std::vector<double> Schedule::SeriesTu(const std::string& process_id, int k,
                                       double d) {
  return SeriesTuN(process_id, InstanceCount(process_id, k, d));
}

double Schedule::SeriesEndTu(const std::string& process_id, int k, double d) {
  auto series = SeriesTu(process_id, k, d);
  return series.empty() ? 0.0 : series.back();
}

const char* Schedule::StreamOf(const std::string& process_id) {
  if (process_id == "P01" || process_id == "P02" || process_id == "P03") {
    return "A";
  }
  if (process_id == "P04" || process_id == "P05" || process_id == "P06" ||
      process_id == "P07" || process_id == "P08" || process_id == "P09" ||
      process_id == "P10" || process_id == "P11") {
    return "B";
  }
  if (process_id == "P12" || process_id == "P13") return "C";
  if (process_id == "P14" || process_id == "P15") return "D";
  return "";
}

std::vector<std::string> Schedule::Predecessors(const std::string& process_id) {
  // The tau_1 dependency edges of Table II: each single-execution process
  // fires after its predecessors' series (or single run) completed.
  if (process_id == "P03") return {"P01", "P02"};
  if (process_id == "P05" || process_id == "P06" || process_id == "P07") {
    return {"P04"};
  }
  if (process_id == "P09") return {"P08"};
  if (process_id == "P11") {
    // tau_1(Stream B): the whole movement-data stream must have drained.
    return {"P04", "P05", "P06", "P07", "P08", "P09", "P10"};
  }
  if (process_id == "P13") return {"P12"};
  if (process_id == "P15") return {"P14"};
  return {};
}

std::vector<double> Schedule::ShapedSeriesTu(const std::string& process_id,
                                             int k,
                                             const ScaleConfig& config) {
  const std::string stream = StreamOf(process_id);
  const TrafficShape* shape = config.ShapeFor(stream);
  if (shape == nullptr || !shape->enabled()) {
    return SeriesTu(process_id, k, config.datasize);
  }
  int n = InstanceCount(process_id, k, config.datasize);
  double multiplier =
      shape->MultiplierFor(stream, k, config.periods, config.seed);
  int shaped = static_cast<int>(
      std::llround(static_cast<double>(n) * multiplier));
  if (shaped < 0) shaped = 0;
  std::vector<double> series = SeriesTuN(process_id, shaped);
  if (shape->late_fraction > 0.0 && shape->late_delay_tu > 0.0) {
    // Which instances run late is drawn from a stream private to
    // (seed, process, period) — stretching one series never reshuffles
    // another's late picks.
    Rng late(config.seed ^ SeedHash("late/" + process_id) ^
             (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(k + 1)));
    for (double& t : series) {
      if (late.NextBool(shape->late_fraction)) t += shape->late_delay_tu;
    }
  }
  return series;
}

}  // namespace dipbench
