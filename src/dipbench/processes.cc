#include "src/dipbench/processes.h"

#include "src/core/operators.h"
#include "src/dipbench/datagen.h"
#include "src/dipbench/scenario.h"
#include "src/dipbench/schemas.h"
#include "src/xml/parser.h"
#include "src/xml/path.h"

namespace dipbench {

using core::Always;
using core::Assign;
using core::Custom;
using core::EventType;
using core::Fork;
using core::InvokeProc;
using core::InvokeQuery;
using core::InvokeQueryXml;
using core::InvokeUpdate;
using core::JoinOp;
using core::MtmMessage;
using core::OpPtr;
using core::ProcessContext;
using core::ProcessDefinition;
using core::Projection;
using core::Receive;
using core::ResourceClaim;
using core::Selection;
using core::Subprocess;
using core::Switch;
using core::SwitchCase;
using core::Translate;
using core::UnionDistinctOp;
using core::Validate;
using core::XmlToRows;

namespace {

/// Rename helper for projections that only move columns.
ProjectionItem Ren(const char* out, const char* in) {
  return ProjectionItem{out, Col(in), DataType::kNull};
}

/// Constant column.
ProjectionItem ConstStr(const char* out, const char* value) {
  return ProjectionItem{out, Lit(value), DataType::kString};
}

ProjectionItem NullStr(const char* out) {
  return ProjectionItem{out, Lit(Value::Null()), DataType::kString};
}

/// Condition on an integer leaf of the XML payload, bucketed by
/// (value / 3) % 3 — routes the European key space round-robin across
/// Berlin, Paris and Trondheim (the paper's Fig. 4 SWITCH on Custkey).
std::function<Result<bool>(ProcessContext*)> EuropeBucketIs(std::string var,
                                                            std::string path,
                                                            int64_t bucket) {
  return [var = std::move(var), path = std::move(path),
          bucket](ProcessContext* ctx) -> Result<bool> {
    DIP_ASSIGN_OR_RETURN(MtmMessage msg, ctx->Get(var));
    DIP_ASSIGN_OR_RETURN(auto doc, msg.Xml());
    DIP_ASSIGN_OR_RETURN(std::string text, xml::SelectText(*doc, path));
    DIP_ASSIGN_OR_RETURN(Value v, Value::Parse(text, DataType::kInt64));
    if (v.is_null()) return false;
    return (v.AsInt() / 3) % 3 == bucket;
  };
}

// --- Group A -------------------------------------------------------------

ProcessDefinition P01() {
  ProcessDefinition def;
  def.id = "P01";
  def.group = 'A';
  def.event_type = EventType::kMessage;
  def.description = "Master data exchange Asia: Beijing XSD -> Seoul XSD";
  def.body = {
      Receive("msg1"),
      Translate("msg1", "msg2", schemas::BeijingToSeoulStx()),
      XmlToRows("msg2", "msg3", schemas::AsiaCustomer(), "CustomerS"),
      InvokeUpdate(Scenario::kSeoul, "upsert_customer", "msg3"),
  };
  // Scheduler claims (SPECIFICATION.md §13): what the body touches.
  def.claims = {ResourceClaim::WriteTable("asia_seoul", "customer"),
                ResourceClaim::Endpoint(Scenario::kSeoul)};
  return def;
}

ProcessDefinition P02() {
  ProcessDefinition def;
  def.id = "P02";
  def.group = 'A';
  def.event_type = EventType::kMessage;
  def.description =
      "Master data subscription Europe: MDM message routed by Custkey";
  // Fig. 4: receive, translate to the Europe schema, SWITCH on the customer
  // identifier, Assign + Invoke per branch.
  auto route = [](const char* service) -> std::vector<OpPtr> {
    return {Assign("msg3", "msg4"),
            InvokeUpdate(service, "upsert_kunde", "msg4")};
  };
  def.body = {
      Receive("msg1"),
      Translate("msg1", "msg2", schemas::MdmToEuropeStx()),
      XmlToRows("msg2", "msg3", schemas::EuropeCustomer(), "kunde"),
      Switch({
          SwitchCase{EuropeBucketIs("msg2", "kdnr", 0),
                     route(Scenario::kBerlin)},
          SwitchCase{EuropeBucketIs("msg2", "kdnr", 1),
                     route(Scenario::kParis)},
          SwitchCase{Always(), route(Scenario::kTrondheim)},
      }),
  };
  // Any one instance touches exactly one branch, but which one depends on
  // the payload — claim the union.
  def.claims = {ResourceClaim::WriteTable("eu_berlin_paris", "kunde"),
                ResourceClaim::WriteTable("eu_trondheim", "kunde"),
                ResourceClaim::Endpoint(Scenario::kBerlin),
                ResourceClaim::Endpoint(Scenario::kParis),
                ResourceClaim::Endpoint(Scenario::kTrondheim)};
  return def;
}

ProcessDefinition P03() {
  ProcessDefinition def;
  def.id = "P03";
  def.group = 'A';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Local data consolidation America: Chicago+Baltimore+Madison -> "
      "US_Eastcoast (UNION DISTINCT per table)";
  // Fig. 5. Deviation: the paper unions Orders, Customer and Part; we also
  // carry Lineitem so that the downstream P11 extraction has movement
  // detail to flatten.
  def.body = {
      InvokeQuery(Scenario::kChicago, "all_orders", {}, "o1"),
      InvokeQuery(Scenario::kBaltimore, "all_orders", {}, "o2"),
      InvokeQuery(Scenario::kMadison, "all_orders", {}, "o3"),
      UnionDistinctOp({"o1", "o2", "o3"}, {"o_orderkey"}, "orders"),
      InvokeUpdate(Scenario::kUsEastcoast, "load_orders", "orders"),

      InvokeQuery(Scenario::kChicago, "all_customers", {}, "c1"),
      InvokeQuery(Scenario::kBaltimore, "all_customers", {}, "c2"),
      InvokeQuery(Scenario::kMadison, "all_customers", {}, "c3"),
      UnionDistinctOp({"c1", "c2", "c3"}, {"c_custkey"}, "customers"),
      InvokeUpdate(Scenario::kUsEastcoast, "load_customers", "customers"),

      InvokeQuery(Scenario::kChicago, "all_parts", {}, "p1"),
      InvokeQuery(Scenario::kBaltimore, "all_parts", {}, "p2"),
      InvokeQuery(Scenario::kMadison, "all_parts", {}, "p3"),
      UnionDistinctOp({"p1", "p2", "p3"}, {"p_partkey"}, "parts"),
      InvokeUpdate(Scenario::kUsEastcoast, "load_parts", "parts"),

      InvokeQuery(Scenario::kChicago, "all_lineitems", {}, "l1"),
      InvokeQuery(Scenario::kBaltimore, "all_lineitems", {}, "l2"),
      InvokeQuery(Scenario::kMadison, "all_lineitems", {}, "l3"),
      UnionDistinctOp({"l1", "l2", "l3"}, {"l_orderkey", "l_linenumber"},
                      "lineitems"),
      InvokeUpdate(Scenario::kUsEastcoast, "load_lineitems", "lineitems"),
  };
  for (const char* src : {"us_chicago", "us_baltimore", "us_madison"}) {
    for (const char* t : {"orders", "customer", "part", "lineitem"}) {
      def.claims.push_back(ResourceClaim::ReadTable(src, t));
    }
  }
  for (const char* t : {"orders", "customer", "part", "lineitem"}) {
    def.claims.push_back(ResourceClaim::WriteTable("us_eastcoast_db", t));
  }
  for (const char* ep : {Scenario::kChicago, Scenario::kBaltimore,
                         Scenario::kMadison, Scenario::kUsEastcoast}) {
    def.claims.push_back(ResourceClaim::Endpoint(ep));
  }
  return def;
}

// --- Group B -------------------------------------------------------------

/// P04's enrichment: look up the customer's consolidated master data and
/// attach the priority to the Vienna message before translation.
OpPtr EnrichViennaWithMasterData() {
  return Custom("enrich_master_data", [](ProcessContext* ctx) -> Status {
    DIP_ASSIGN_OR_RETURN(MtmMessage msg, ctx->Get("msg1"));
    DIP_ASSIGN_OR_RETURN(auto doc, msg.Xml());
    DIP_ASSIGN_OR_RETURN(std::string kdnr_text,
                         xml::SelectText(*doc, "Kdnr"));
    DIP_ASSIGN_OR_RETURN(Value kdnr, Value::Parse(kdnr_text,
                                                  DataType::kInt64));
    DIP_ASSIGN_OR_RETURN(net::Endpoint * cdb,
                         ctx->network()->Get(Scenario::kCdb));
    net::NetStats stats;
    DIP_ASSIGN_OR_RETURN(RowSet master,
                         cdb->Query("lookup_customer", {kdnr}, &stats));
    ctx->ChargeComm(stats);
    xml::NodePtr enriched = doc->Clone();
    if (!master.rows.empty() && !master.rows[0][3].is_null()) {
      enriched->AddText("Prio", master.rows[0][3].AsString());
    } else {
      enriched->AddText("Prio", "MEDIUM");
    }
    ctx->ChargeXmlNodes(enriched->SubtreeSize());
    ctx->Set("msg1e", MtmMessage::FromXml(std::move(enriched)));
    return Status::OK();
  });
}

/// Flattens a translated CDB order document (<order> with <line> children)
/// into staged order rows, one per line.
OpPtr FlattenOrderDocument(const std::string& in_var,
                           const std::string& out_var) {
  return Custom("flatten_order", [in_var, out_var](
                                     ProcessContext* ctx) -> Status {
    DIP_ASSIGN_OR_RETURN(MtmMessage msg, ctx->Get(in_var));
    DIP_ASSIGN_OR_RETURN(auto doc, msg.Xml());
    ctx->ChargeXmlNodes(doc->SubtreeSize());
    RowSet out;
    out.schema = schemas::StagedOrder();
    auto leaf = [&](const std::string& name, DataType t) -> Value {
      const xml::Node* n = doc->FindChild(name);
      if (n == nullptr || n->text().empty()) return Value::Null();
      auto parsed = Value::Parse(n->text(), t);
      return parsed.ok() ? *parsed : Value::Null();
    };
    Value orderkey = leaf("orderkey", DataType::kInt64);
    Value custkey = leaf("custkey", DataType::kInt64);
    Value orderdate = leaf("orderdate", DataType::kDate);
    Value priority = leaf("priority", DataType::kString);
    Value source = leaf("source", DataType::kString);
    int64_t line_no = 0;
    for (const xml::Node* line : doc->FindChildren("line")) {
      ++line_no;
      auto line_leaf = [&](const char* name, DataType t) -> Value {
        const xml::Node* n = line->FindChild(name);
        if (n == nullptr || n->text().empty()) return Value::Null();
        auto parsed = Value::Parse(n->text(), t);
        return parsed.ok() ? *parsed : Value::Null();
      };
      // Line-level order keys: orderkey * 100 + position keeps them unique
      // in the consolidated orders table.
      Value line_key =
          orderkey.is_null()
              ? Value::Null()
              : Value::Int(orderkey.AsInt() * 100 + line_no);
      out.rows.push_back({line_key, custkey,
                          line_leaf("prodkey", DataType::kInt64), orderdate,
                          line_leaf("quantity", DataType::kInt64),
                          line_leaf("price", DataType::kDouble), priority,
                          source});
    }
    ctx->ChargeRows(out.rows.size());
    ctx->Set(out_var, MtmMessage::FromRows(std::move(out)));
    return Status::OK();
  });
}

ProcessDefinition P04() {
  ProcessDefinition def;
  def.id = "P04";
  def.group = 'B';
  def.event_type = EventType::kMessage;
  def.description =
      "Receive Vienna messages, enrich with master data, translate, load CDB";
  def.body = {
      Receive("msg1"),
      EnrichViennaWithMasterData(),
      Translate("msg1e", "msg2", schemas::ViennaToCdbStx()),
      FlattenOrderDocument("msg2", "msg3"),
      InvokeUpdate(Scenario::kCdb, "load_orders", "msg3"),
  };
  // load_orders resolves citykey against cdb_db.customer (handler-side
  // read); the enrichment lookup reads the same table. Orders rows are pure
  // inserts, never read back by the body: an append claim lets concurrent
  // order messages capture in parallel.
  def.claims = {ResourceClaim::ReadTable("cdb_db", "customer"),
                ResourceClaim::AppendTable("cdb_db", "orders"),
                ResourceClaim::Endpoint(Scenario::kCdb)};
  return def;
}

ProcessDefinition EuropeExtract(const char* id, const char* service,
                                const char* location, bool with_selection) {
  ProcessDefinition def;
  def.id = id;
  def.group = 'B';
  def.event_type = EventType::kTimeEvent;
  def.description = std::string("Extract data from ") + location;
  def.body = {InvokeQuery(service, "extract_orders", {}, "msg1")};
  std::string current = "msg1";
  if (with_selection) {
    // Berlin and Paris share a database instance: filter the location.
    def.body.push_back(
        Selection("msg1", "msg2", Eq(Col("location"), Lit(location))));
    current = "msg2";
  }
  def.body.push_back(Projection(
      current, "msg3",
      {// Line-level order keys: anr * 100 + pos (one consolidated row per
       // order line).
       ProjectionItem{"orderkey",
                      Add(Mul(Col("anr"), Lit(int64_t{100})), Col("pos")),
                      DataType::kInt64},
       Ren("custkey", "kdnr"), Ren("prodkey", "pnr"),
       Ren("orderdate", "datum"), Ren("quantity", "menge"),
       Ren("price", "preis"), NullStr("priority"),
       ConstStr("source", location)}));
  def.body.push_back(InvokeUpdate(Scenario::kCdb, "load_orders", "msg3"));
  // Berlin and Paris share the eu_berlin_paris instance; Trondheim has its
  // own. The CDB load reads customer (citykey resolution) and append-only
  // inserts orders.
  const char* src_db = with_selection ? "eu_berlin_paris" : "eu_trondheim";
  def.claims = {ResourceClaim::ReadTable(src_db, "auftrag"),
                ResourceClaim::ReadTable(src_db, "position"),
                ResourceClaim::ReadTable("cdb_db", "customer"),
                ResourceClaim::AppendTable("cdb_db", "orders"),
                ResourceClaim::Endpoint(service),
                ResourceClaim::Endpoint(Scenario::kCdb)};
  return def;
}

ProcessDefinition P05() {
  return EuropeExtract("P05", Scenario::kBerlin, "berlin", true);
}
ProcessDefinition P06() {
  return EuropeExtract("P06", Scenario::kParis, "paris", true);
}
ProcessDefinition P07() {
  return EuropeExtract("P07", Scenario::kTrondheim, "trondheim", false);
}

ProcessDefinition P08() {
  ProcessDefinition def;
  def.id = "P08";
  def.group = 'B';
  def.event_type = EventType::kMessage;
  def.description = "Receive Hongkong sales messages, translate, load CDB";
  Schema staged = schemas::StagedOrder();
  def.body = {
      Receive("msg1"),
      Translate("msg1", "msg2", schemas::HongkongToCdbStx()),
      XmlToRows("msg2", "msg3", staged, "order"),
      InvokeUpdate(Scenario::kCdb, "load_orders", "msg3"),
  };
  def.claims = {ResourceClaim::ReadTable("cdb_db", "customer"),
                ResourceClaim::AppendTable("cdb_db", "orders"),
                ResourceClaim::Endpoint(Scenario::kCdb)};
  return def;
}

ProcessDefinition P09() {
  ProcessDefinition def;
  def.id = "P09";
  def.group = 'B';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Extract wrapped data from Beijing and Seoul, translate via two STX "
      "style sheets, UNION DISTINCT, load CDB";
  Schema staged = schemas::StagedOrder();
  def.body = {
      InvokeQueryXml(Scenario::kBeijing, "extract_sales", {}, "xmlB"),
      Translate("xmlB", "xmlB2", schemas::BeijingToCdbStx()),
      XmlToRows("xmlB2", "rowsB", staged, "row"),
      InvokeQueryXml(Scenario::kSeoul, "extract_sales", {}, "xmlS"),
      Translate("xmlS", "xmlS2", schemas::SeoulToCdbStx()),
      XmlToRows("xmlS2", "rowsS", staged, "row"),
      // Paper: "UNION DISTINCT concerning the Orderkey, Custkey and
      // Productkey".
      UnionDistinctOp({"rowsB", "rowsS"},
                      {"orderkey", "custkey", "prodkey"}, "merged"),
      InvokeUpdate(Scenario::kCdb, "load_orders", "merged"),
  };
  def.claims = {ResourceClaim::ReadTable("asia_beijing", "sales"),
                ResourceClaim::ReadTable("asia_beijing", "customer"),
                ResourceClaim::ReadTable("asia_seoul", "sales"),
                ResourceClaim::ReadTable("asia_seoul", "customer"),
                ResourceClaim::ReadTable("cdb_db", "customer"),
                ResourceClaim::AppendTable("cdb_db", "orders"),
                ResourceClaim::Endpoint(Scenario::kBeijing),
                ResourceClaim::Endpoint(Scenario::kSeoul),
                ResourceClaim::Endpoint(Scenario::kCdb)};
  return def;
}

/// P10's invalid branch: the raw message is preserved in the failed-data
/// destination together with the validation reason.
OpPtr StageFailedMessage() {
  return Custom("stage_failed", [](ProcessContext* ctx) -> Status {
    DIP_ASSIGN_OR_RETURN(MtmMessage msg, ctx->Get("msg1"));
    DIP_ASSIGN_OR_RETURN(auto doc, msg.Xml());
    RowSet out;
    out.schema.AddColumn("reason", DataType::kString)
        .AddColumn("payload", DataType::kString);
    out.rows.push_back({Value::String("xsd-validation-failed"),
                        Value::String(xml::WriteXml(*doc))});
    ctx->ChargeXmlNodes(doc->SubtreeSize());
    ctx->quality().messages_rejected++;
    ctx->Set("failed_rows", MtmMessage::FromRows(std::move(out)));
    return Status::OK();
  });
}

ProcessDefinition P10() {
  ProcessDefinition def;
  def.id = "P10";
  def.group = 'B';
  def.event_type = EventType::kMessage;
  def.description =
      "Receive error-prone San Diego messages: validate, route failures to "
      "failed-data destinations, load the rest";
  Schema staged = schemas::StagedOrder();
  def.body = {
      Receive("msg1"),
      Validate("msg1", schemas::SanDiegoOrderXsd(),
               /*on_valid=*/
               {
                   Translate("msg1", "msg2", schemas::SanDiegoToCdbStx()),
                   XmlToRows("msg2", "msg3", staged, "order"),
                   InvokeUpdate(Scenario::kCdb, "load_orders", "msg3"),
               },
               /*on_invalid=*/
               {
                   StageFailedMessage(),
                   InvokeUpdate(Scenario::kCdb, "load_failed", "failed_rows"),
               }),
  };
  // Union over both validation branches. Orders is append-only, but
  // failed_data stays a write claim: load_failed draws a failed_id sequence
  // per row, so P10 instances must capture in serial order anyway.
  def.claims = {ResourceClaim::ReadTable("cdb_db", "customer"),
                ResourceClaim::AppendTable("cdb_db", "orders"),
                ResourceClaim::WriteTable("cdb_db", "failed_data"),
                ResourceClaim::Endpoint(Scenario::kCdb)};
  return def;
}

ProcessDefinition P11() {
  ProcessDefinition def;
  def.id = "P11";
  def.group = 'B';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Extract all data from US_Eastcoast, several projections (schema "
      "mapping), load into the global CDB";
  def.body = {
      // Movement.
      InvokeQuery(Scenario::kUsEastcoast, "extract_flat", {}, "m1"),
      Projection("m1", "m2",
                 {ProjectionItem{"orderkey",
                                 Add(Mul(Col("o_orderkey"), Lit(int64_t{100})),
                                     Col("l_linenumber")),
                                 DataType::kInt64},
                  Ren("custkey", "o_custkey"), Ren("prodkey", "l_partkey"),
                  Ren("orderdate", "o_orderdate"), Ren("quantity", "l_qty"),
                  Ren("price", "l_price"), NullStr("priority"),
                  ConstStr("source", "us_eastcoast")}),
      InvokeUpdate(Scenario::kCdb, "load_orders", "m2"),
      // Customer master (semantic priority mapping on the way).
      InvokeQuery(Scenario::kUsEastcoast, "extract_customers", {}, "c1"),
      Projection("c1", "c2",
                 {Ren("custkey", "c_custkey"), Ren("name", "c_name"),
                  Ren("city", "c_city"),
                  ProjectionItem{"priority",
                                 Func("decode",
                                      {Col("c_prio"), Lit("URGENT"),
                                       Lit("HIGH"), Lit("NORMAL"),
                                       Lit("MEDIUM"), Lit("LOW"), Lit("LOW"),
                                       Lit("MEDIUM")}),
                                 DataType::kString}}),
      InvokeUpdate(Scenario::kCdb, "load_customers", "c2"),
      // Product master.
      InvokeQuery(Scenario::kUsEastcoast, "extract_parts", {}, "p1"),
      Projection("p1", "p2",
                 {Ren("prodkey", "p_partkey"), Ren("name", "p_name"),
                  Ren("grp", "p_group")}),
      InvokeUpdate(Scenario::kCdb, "load_products", "p2"),
  };
  for (const char* t : {"orders", "customer", "part", "lineitem"}) {
    def.claims.push_back(ResourceClaim::ReadTable("us_eastcoast_db", t));
  }
  // Handler-side reads: load_customers resolves city names, load_products
  // resolves product groups.
  def.claims.push_back(ResourceClaim::ReadTable("cdb_db", "city"));
  def.claims.push_back(ResourceClaim::ReadTable("cdb_db", "productgroup"));
  for (const char* t : {"orders", "customer", "product"}) {
    def.claims.push_back(ResourceClaim::WriteTable("cdb_db", t));
  }
  def.claims.push_back(ResourceClaim::Endpoint(Scenario::kUsEastcoast));
  def.claims.push_back(ResourceClaim::Endpoint(Scenario::kCdb));
  return def;
}

// --- Group C -------------------------------------------------------------

/// Row-level validation before a warehouse load: rows missing mandatory
/// references are counted and filtered (never loaded).
OpPtr ValidateRows(const std::string& in_var, const std::string& out_var,
                   std::vector<std::string> required_columns) {
  return Custom(
      "validate_rows",
      [in_var, out_var, required_columns](ProcessContext* ctx) -> Status {
        DIP_ASSIGN_OR_RETURN(MtmMessage msg, ctx->Get(in_var));
        DIP_ASSIGN_OR_RETURN(auto rows, msg.Rows());
        std::vector<size_t> idx;
        for (const auto& c : required_columns) {
          DIP_ASSIGN_OR_RETURN(size_t i, rows->schema.RequireIndexOf(c));
          idx.push_back(i);
        }
        RowSet out;
        out.schema = rows->schema;
        for (const Row& r : rows->rows) {
          bool valid = true;
          for (size_t i : idx) {
            if (r[i].is_null()) {
              valid = false;
              break;
            }
          }
          if (valid) {
            out.rows.push_back(r);
          } else {
            ctx->quality().validation_failures++;
          }
        }
        ctx->ChargeRows(rows->rows.size());
        ctx->Set(out_var, MtmMessage::FromRows(std::move(out)));
        return Status::OK();
      });
}

ProcessDefinition P12(Realization realization) {
  const bool inc = realization == Realization::kIncremental;
  ProcessDefinition def;
  def.id = "P12";
  def.group = 'C';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Bulk-load DWH master data: cleanse in CDB, extract, validate, load, "
      "flag integrated";
  // Incremental realization (src/ivm): the customer/product extracts are
  // already delta-sized via the integrated flag; only the reference
  // dimensions switch from full scans to change-log suffixes, and the final
  // flagging procedure additionally consumes the dimension cursors.
  auto dim_query = [&](const char* t) {
    return std::string(inc ? "delta_" : "all_") + t;
  };
  def.body = {
      InvokeProc(Scenario::kCdb, "sp_runMasterDataCleansing", {}),
      // Customers.
      InvokeQuery(Scenario::kCdb, "extract_clean_customers", {}, "mc1"),
      ValidateRows("mc1", "mc2", {"custkey", "name", "citykey"}),
      InvokeUpdate(Scenario::kDwh, "load_customers", "mc2"),
      // Products.
      InvokeQuery(Scenario::kCdb, "extract_clean_products", {}, "mp1"),
      ValidateRows("mp1", "mp2", {"prodkey", "name", "groupkey"}),
      InvokeUpdate(Scenario::kDwh, "load_products", "mp2"),
      // Reference dimensions travel with the master data.
      InvokeQuery(Scenario::kCdb, dim_query("city"), {}, "d1"),
      InvokeUpdate(Scenario::kDwh, "load_city", "d1"),
      InvokeQuery(Scenario::kCdb, dim_query("nation"), {}, "d2"),
      InvokeUpdate(Scenario::kDwh, "load_nation", "d2"),
      InvokeQuery(Scenario::kCdb, dim_query("region"), {}, "d3"),
      InvokeUpdate(Scenario::kDwh, "load_region", "d3"),
      InvokeQuery(Scenario::kCdb, dim_query("productgroup"), {}, "d4"),
      InvokeUpdate(Scenario::kDwh, "load_productgroup", "d4"),
      InvokeQuery(Scenario::kCdb, dim_query("productline"), {}, "d5"),
      InvokeUpdate(Scenario::kDwh, "load_productline", "d5"),
      // Master data is flagged as integrated but not physically removed.
      InvokeProc(Scenario::kCdb,
                 inc ? "sp_flagMasterIntegratedDelta"
                     : "sp_flagMasterIntegrated",
                 {}),
  };
  // The cleansing + flagging procedures rewrite master data in place:
  // exclusive over the whole CDB instance.
  def.claims = {ResourceClaim::ExclusiveDb("cdb_db"),
                ResourceClaim::WriteTable("dwh_db", "customer"),
                ResourceClaim::WriteTable("dwh_db", "product"),
                ResourceClaim::WriteTable("dwh_db", "city"),
                ResourceClaim::WriteTable("dwh_db", "nation"),
                ResourceClaim::WriteTable("dwh_db", "region"),
                ResourceClaim::WriteTable("dwh_db", "productgroup"),
                ResourceClaim::WriteTable("dwh_db", "productline"),
                ResourceClaim::Endpoint(Scenario::kCdb),
                ResourceClaim::Endpoint(Scenario::kDwh)};
  return def;
}

ProcessDefinition P13(Realization realization) {
  const bool inc = realization == Realization::kIncremental;
  ProcessDefinition def;
  def.id = "P13";
  def.group = 'C';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Bulk-load DWH movement data: cleanse, extract, validate, load, "
      "refresh OrdersMV, delete integrated movement from the CDB";
  def.body = {
      InvokeProc(Scenario::kCdb, "sp_runMovementDataCleansing", {}),
      InvokeQuery(Scenario::kCdb, "extract_clean_orders", {}, "mo1"),
      ValidateRows("mo1", "mo2", {"orderkey", "custkey", "orderdate"}),
      InvokeUpdate(Scenario::kDwh, "load_orders", "mo2"),
      // First invocation: refresh the materialized view — full recompute,
      // or a fold of the change-log suffix the load above appended.
      InvokeProc(Scenario::kDwh,
                 inc ? "sp_refreshOrdersMvIncremental" : "sp_refreshOrdersMv",
                 {}),
      // Second invocation: remove loaded movement data for simple delta
      // determination in the following integration processes.
      InvokeProc(Scenario::kCdb, "sp_deleteIntegratedMovement", {}),
  };
  // Deletes integrated movement from the CDB and refreshes OrdersMV:
  // exclusive over both instances.
  def.claims = {ResourceClaim::ExclusiveDb("cdb_db"),
                ResourceClaim::ExclusiveDb("dwh_db"),
                ResourceClaim::Endpoint(Scenario::kCdb),
                ResourceClaim::Endpoint(Scenario::kDwh)};
  return def;
}

// --- Group D -------------------------------------------------------------

std::vector<OpPtr> MartBranch(const char* mart, const char* region,
                              bool product_denorm, bool location_denorm) {
  std::string region_orders = std::string("orders_") + region;
  std::string mapped = std::string("mapped_") + region;
  std::vector<OpPtr> load_ops = {
      InvokeUpdate(mart, "load_orders", mapped),
      InvokeUpdate(mart, "load_customers",
                   location_denorm ? "cust_denorm" : "cust_norm"),
      InvokeUpdate(mart, "load_products",
                   product_denorm ? "prod_denorm" : "prod_norm"),
  };
  if (!location_denorm) {
    load_ops.push_back(InvokeUpdate(mart, "load_city", "dim_city"));
    load_ops.push_back(InvokeUpdate(mart, "load_nation", "dim_nation"));
    load_ops.push_back(InvokeUpdate(mart, "load_region", "dim_region"));
  }
  if (!product_denorm) {
    load_ops.push_back(InvokeUpdate(mart, "load_productgroup", "dim_pg"));
    load_ops.push_back(InvokeUpdate(mart, "load_productline", "dim_pl"));
  }
  return {
      // Thread = selection operator + subprocess invocation (paper IV-D).
      Selection("all_orders", region_orders,
                Eq(Col("region"), Lit(region))),
      Projection(region_orders, mapped,
                 {Ren("orderkey", "orderkey"), Ren("custkey", "custkey"),
                  Ren("prodkey", "prodkey"), Ren("citykey", "citykey"),
                  Ren("orderdate", "orderdate"),
                  Ren("quantity", "quantity"), Ren("price", "price"),
                  Ren("priority", "priority"), Ren("source", "source")}),
      Subprocess(std::string("P14_S_") + region, std::move(load_ops)),
  };
}

ProcessDefinition P14(Realization realization) {
  const bool inc = realization == Realization::kIncremental;
  ProcessDefinition def;
  def.id = "P14";
  def.group = 'D';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Refresh data marts: subprocess P14_S1 extracts all DWH data, three "
      "concurrent threads map and load the region marts";
  // Incremental realization: the movement extraction reads only the
  // dwh_db.orders change-log suffix behind the "mart" cursor (the master
  // extracts stay full — mart loads upsert, so replaying them is
  // idempotent), and a final procedure consumes the cursor once all three
  // branches loaded.
  def.body = {
      Subprocess(
          "P14_S1",
          {
              InvokeQuery(Scenario::kDwh,
                          inc ? "extract_orders_with_region_delta"
                              : "extract_orders_with_region",
                          {}, "all_orders"),
              InvokeQuery(Scenario::kDwh, "extract_customers_denorm", {},
                          "cust_denorm"),
              InvokeQuery(Scenario::kDwh, "extract_customers_norm", {},
                          "cust_norm"),
              InvokeQuery(Scenario::kDwh, "extract_products_denorm", {},
                          "prod_denorm"),
              InvokeQuery(Scenario::kDwh, "extract_products_norm", {},
                          "prod_norm"),
              InvokeQuery(Scenario::kDwh, "all_city", {}, "dim_city"),
              InvokeQuery(Scenario::kDwh, "all_nation", {}, "dim_nation"),
              InvokeQuery(Scenario::kDwh, "all_region", {}, "dim_region"),
              InvokeQuery(Scenario::kDwh, "all_productgroup", {}, "dim_pg"),
              InvokeQuery(Scenario::kDwh, "all_productline", {}, "dim_pl"),
          }),
      Fork({
          MartBranch(Scenario::kDmEurope, "Europe", true, true),
          MartBranch(Scenario::kDmAsia, "Asia", true, false),
          MartBranch(Scenario::kDmUnitedStates, "America", false, true),
      }),
  };
  if (inc) {
    def.body.push_back(InvokeProc(Scenario::kDwh, "sp_advanceMartCursor", {}));
  }
  for (const char* t : {"orders", "orders_mv", "customer", "product", "city",
                        "nation", "region", "productgroup", "productline"}) {
    // The incremental body advances the orders change-log cursor — a write
    // to dwh_db.orders state as far as the wave scheduler is concerned.
    if (inc && std::string(t) == "orders") {
      def.claims.push_back(ResourceClaim::WriteTable("dwh_db", t));
      continue;
    }
    def.claims.push_back(ResourceClaim::ReadTable("dwh_db", t));
  }
  for (const char* db : {"dm_europe_db", "dm_asia_db",
                         "dm_united_states_db"}) {
    def.claims.push_back(ResourceClaim::ExclusiveDb(db));
  }
  for (const char* ep : {Scenario::kDwh, Scenario::kDmEurope,
                         Scenario::kDmAsia, Scenario::kDmUnitedStates}) {
    def.claims.push_back(ResourceClaim::Endpoint(ep));
  }
  return def;
}

ProcessDefinition P15(Realization realization) {
  const char* proc = realization == Realization::kIncremental
                         ? "sp_refresh_mv_incremental"
                         : "sp_refresh_mv";
  ProcessDefinition def;
  def.id = "P15";
  def.group = 'D';
  def.event_type = EventType::kTimeEvent;
  def.description =
      "Refresh the materialized views of all data marts (no dependencies -> "
      "processed in parallel)";
  def.body = {
      Fork({
          {InvokeProc(Scenario::kDmEurope, proc, {})},
          {InvokeProc(Scenario::kDmAsia, proc, {})},
          {InvokeProc(Scenario::kDmUnitedStates, proc, {})},
      }),
  };
  def.claims = {ResourceClaim::ExclusiveDb("dm_europe_db"),
                ResourceClaim::ExclusiveDb("dm_asia_db"),
                ResourceClaim::ExclusiveDb("dm_united_states_db"),
                ResourceClaim::Endpoint(Scenario::kDmEurope),
                ResourceClaim::Endpoint(Scenario::kDmAsia),
                ResourceClaim::Endpoint(Scenario::kDmUnitedStates)};
  return def;
}

}  // namespace

std::vector<ProcessDefinition> BuildProcesses(Realization realization) {
  return {P01(), P02(), P03(), P04(),
          P05(), P06(), P07(), P08(),
          P09(), P10(), P11(), P12(realization),
          P13(realization), P14(realization), P15(realization)};
}

Result<ProcessDefinition> BuildProcess(const std::string& id,
                                       Realization realization) {
  for (auto& def : BuildProcesses(realization)) {
    if (def.id == id) return def;
  }
  return Status::NotFound("no process type " + id);
}

}  // namespace dipbench
