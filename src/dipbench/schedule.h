#ifndef DIPBENCH_DIPBENCH_SCHEDULE_H_
#define DIPBENCH_DIPBENCH_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/dipbench/config.h"

namespace dipbench {

/// The scheduling series of paper Table II. All times are in tu relative
/// to the owning stream's start T0(Stream_k); instance counts depend on the
/// benchmark period k and the datasize scale factor d.
///
/// Series (with our resolution of the two typographically damaged bounds,
/// see DESIGN.md):
///   P01: 2(m-1),            1 <= m <= floor((100-k)*d/5)  + 1
///   P02: 2m,                1 <= m <= floor((100-k)*d/10) + 1
///   P04: 2(m-1),            1 <= m <= floor(1100*d) + 1
///   P08: 2000 + 3(m-1),     1 <= m <= floor(900*d)  + 1
///   P10: 3000 + 2.5(m-1),   1 <= m <= floor(1050*d) + 1
/// P03, P05-P07, P09, P11-P15 are single executions whose firing times are
/// dependency-driven (tau_1 of their predecessors).
class Schedule {
 public:
  /// Number of process instances of an E1 series in period k. The P01/P02
  /// counts decrease with k — the paper designed this "to achieve a
  /// realistic scaling of master data management".
  static int InstanceCount(const std::string& process_id, int k, double d);

  /// Event times (tu, relative to the stream start) for an E1 series.
  static std::vector<double> SeriesTu(const std::string& process_id, int k,
                                      double d);

  /// Event times for the first `n` instances of an E1 series — the Table II
  /// cadence continued to an arbitrary count (scenario traffic shapes
  /// stretch or shrink a series without changing its rhythm).
  static std::vector<double> SeriesTuN(const std::string& process_id, int n);

  /// Last event time of the series (0 when the series is empty).
  static double SeriesEndTu(const std::string& process_id, int k, double d);

  /// The stream owning a process type: "A" (P01-P03 master data), "B"
  /// (P04-P11 movement data), "C" (P12/P13), "D" (P14/P15); "" when
  /// unknown. Scenario traffic shapes are keyed by these names.
  static const char* StreamOf(const std::string& process_id);

  /// The process types that must complete before this one may start — the
  /// paper's explicit dependency edges (tau_1 triggers): P03 after P01 and
  /// P02; P05-P07 and P09 after their extraction predecessors; P11 after
  /// the rest of stream B; P13 after P12; P15 after P14. The client stamps
  /// these onto the submitted events (ProcessEvent::after_types) for the
  /// engine's intra-run instance scheduler. Empty for series processes.
  static std::vector<std::string> Predecessors(const std::string& process_id);

  /// The manifest-aware series: applies the config's traffic shape for the
  /// process's stream — instance-count modulation for period k, then the
  /// late-arrival window (seeded per (seed, process, period)). A config
  /// without scenario extensions returns SeriesTu unchanged, value for
  /// value.
  static std::vector<double> ShapedSeriesTu(const std::string& process_id,
                                            int k, const ScaleConfig& config);

  /// The fixed offset Table II adds between dependency-triggered time
  /// events when approximated on the schedule axis.
  static constexpr double kChainGapTu = 10.0;
};

}  // namespace dipbench

#endif  // DIPBENCH_DIPBENCH_SCHEDULE_H_
