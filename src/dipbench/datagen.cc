#include "src/dipbench/datagen.h"

#include <atomic>
#include <cmath>
#include <functional>
#include <map>
#include <thread>

#include "src/common/string_util.h"
#include "src/xml/bridge.h"
#include "src/xml/parser.h"

namespace dipbench {
namespace {

/// 27 cities, 9 per region, 3 per nation. Index = citykey - 1.
struct CityRow {
  const char* city;
  const char* nation;
  const char* region;
};
constexpr CityRow kCities[] = {
    // Europe (region 0)
    {"Berlin", "Germany", "Europe"},     {"Munich", "Germany", "Europe"},
    {"Hamburg", "Germany", "Europe"},    {"Paris", "France", "Europe"},
    {"Lyon", "France", "Europe"},        {"Nice", "France", "Europe"},
    {"Trondheim", "Norway", "Europe"},   {"Oslo", "Norway", "Europe"},
    {"Bergen", "Norway", "Europe"},
    // Asia (region 1)
    {"Beijing", "China", "Asia"},        {"Shanghai", "China", "Asia"},
    {"Hongkong", "China", "Asia"},       {"Seoul", "Korea", "Asia"},
    {"Busan", "Korea", "Asia"},          {"Incheon", "Korea", "Asia"},
    {"Tokyo", "Japan", "Asia"},          {"Osaka", "Japan", "Asia"},
    {"Kyoto", "Japan", "Asia"},
    // America (region 2)
    {"Chicago", "USA", "America"},       {"Baltimore", "USA", "America"},
    {"Madison", "USA", "America"},       {"San Diego", "Mexico", "America"},
    {"Monterrey", "Mexico", "America"},  {"Cancun", "Mexico", "America"},
    {"Toronto", "Canada", "America"},    {"Vancouver", "Canada", "America"},
    {"Montreal", "Canada", "America"},
};
constexpr int kCityCount = 27;
constexpr int kCitiesPerRegion = 9;

constexpr const char* kProductLines[] = {"Consumer", "Enterprise",
                                         "Industrial"};
constexpr const char* kProductGroups[] = {
    "Phones",  "Tablets",  "Laptops",   // Consumer
    "Servers", "Storage",  "Networks",  // Enterprise
    "Motors",  "Sensors",  "Robotics",  // Industrial
};

int64_t ProductGroupOf(int64_t prodkey) { return prodkey % 9 + 1; }

/// Per-source movement volume varies between periods (business volume is
/// not constant): +/-30% around the configured base. This also gives the
/// data-intensive process types the per-instance cost deviation the paper
/// observes in Fig. 10 ("caused by a smaller number of executed process
/// instances but also by internal optimization techniques").
int64_t JitteredVolume(int64_t base, Rng* rng) {
  double factor = 0.7 + 0.6 * rng->NextDouble();
  int64_t n = std::llround(static_cast<double>(base) * factor);
  return n < 3 ? 3 : n;
}

/// Order dates within 2008 H1 — month variety feeds the OrdersMV cube.
int64_t OrderDate(int period, int64_t seq) {
  int month = 1 + (period + static_cast<int>(seq)) % 6;
  int day = 1 + static_cast<int>(seq) % 28;
  return 20080000 + month * 100 + day;
}

/// Runs every seeding unit, inline for jobs <= 1 or on up to `jobs`
/// threads. Units are independent by construction (disjoint databases,
/// private PRNG streams), so the schedule cannot influence the data; the
/// first non-OK status (in unit order, for determinism) is reported.
Status RunSeedUnits(std::vector<std::function<Status()>>* units, int jobs) {
  if (jobs <= 1) {
    for (auto& unit : *units) {
      DIP_RETURN_NOT_OK(unit());
    }
    return Status::OK();
  }
  std::vector<Status> results(units->size(), Status::OK());
  std::atomic<size_t> next{0};
  size_t n_threads = std::min(static_cast<size_t>(jobs), units->size());
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([units, &results, &next] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= units->size()) return;
        results[i] = (*units)[i]();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const Status& st : results) {
    DIP_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace

Initializer::Initializer(Scenario* scenario, const ScaleConfig& config)
    : scenario_(scenario), config_(config), msg_rng_(config.seed ^ 0xABCDEF) {}

int64_t Initializer::CityOf(int64_t custkey) {
  int region = RegionOf(custkey);
  int64_t within = (custkey / 3) % kCitiesPerRegion;
  return region * kCitiesPerRegion + within + 1;
}

const char* Initializer::CdbPriority(int64_t custkey) {
  switch (custkey % 5) {
    case 0:
      return "HIGH";
    case 1:
    case 2:
      return "MEDIUM";
    default:
      return "LOW";
  }
}

Initializer::Sizes Initializer::SizesForConfig() const {
  Sizes s;
  double d = config_.datasize;
  s.customers = std::max<int64_t>(30, std::llround(2000 * d));
  s.products = std::max<int64_t>(12, std::llround(1000 * d));
  s.orders_per_eu = std::max<int64_t>(5, std::llround(2000 * d));
  s.orders_per_asia = std::max<int64_t>(5, std::llround(1500 * d));
  s.orders_per_us = std::max<int64_t>(5, std::llround(1600 * d));
  return s;
}

Status Initializer::InitializePeriod(int period) {
  scenario_->UninitializeAll();

  // One master stream per period; every seeding unit receives its own fork
  // BEFORE any unit runs, in this fixed order. A unit's data therefore
  // depends only on (seed, period, unit), never on which thread ran it or
  // what ran beside it — serial and parallel initialization are
  // byte-identical, including row order within each table.
  Rng master(config_.seed + static_cast<uint64_t>(period) * 7919);
  Rng cdb_rng = master.Fork();
  Rng eu_bp_rng = master.Fork();
  Rng eu_tr_rng = master.Fork();
  Rng beijing_rng = master.Fork();
  Rng seoul_rng = master.Fork();
  Rng hongkong_rng = master.Fork();
  Rng chicago_rng = master.Fork();
  Rng baltimore_rng = master.Fork();
  Rng madison_rng = master.Fork();

  std::vector<std::function<Status()>> units;
  units.push_back([this, cdb_rng]() mutable { return SeedCdb(&cdb_rng); });
  units.push_back([this, period, eu_bp_rng]() mutable {
    return SeedEuropeDb("eu_berlin_paris", period, &eu_bp_rng);
  });
  units.push_back([this, period, eu_tr_rng]() mutable {
    return SeedEuropeDb("eu_trondheim", period, &eu_tr_rng);
  });
  units.push_back([this, period, beijing_rng]() mutable {
    return SeedAsiaService("asia_beijing", 4, period, &beijing_rng);
  });
  units.push_back([this, period, seoul_rng]() mutable {
    return SeedAsiaService("asia_seoul", 5, period, &seoul_rng);
  });
  units.push_back([this, period, hongkong_rng]() mutable {
    return SeedAsiaService("asia_hongkong", 6, period, &hongkong_rng);
  });
  units.push_back([this, period, chicago_rng]() mutable {
    return SeedAmericaSource("us_chicago", 7, period, &chicago_rng);
  });
  units.push_back([this, period, baltimore_rng]() mutable {
    return SeedAmericaSource("us_baltimore", 8, period, &baltimore_rng);
  });
  units.push_back([this, period, madison_rng]() mutable {
    return SeedAmericaSource("us_madison", 9, period, &madison_rng);
  });
  return RunSeedUnits(&units, config_.datagen_jobs);
}

Status Initializer::SeedCdb(Rng* rng) {
  DIP_RETURN_NOT_OK(SeedCdbReference());
  return SeedCdbMaster(rng);
}

Status Initializer::SeedCdbReference() {
  DIP_ASSIGN_OR_RETURN(Database * cdb, scenario_->db("cdb_db"));
  DIP_ASSIGN_OR_RETURN(Table * region, cdb->GetTable("region"));
  DIP_ASSIGN_OR_RETURN(Table * nation, cdb->GetTable("nation"));
  DIP_ASSIGN_OR_RETURN(Table * city, cdb->GetTable("city"));
  DIP_ASSIGN_OR_RETURN(Table * lines, cdb->GetTable("productline"));
  DIP_ASSIGN_OR_RETURN(Table * groups, cdb->GetTable("productgroup"));

  // Regions + nations derived from the city list (stable keys).
  std::map<std::string, int64_t> region_keys, nation_keys;
  for (int i = 0; i < kCityCount; ++i) {
    const CityRow& c = kCities[i];
    if (region_keys.emplace(c.region, region_keys.size() + 1).second) {
      DIP_RETURN_NOT_OK(region->Insert(
          {Value::Int(region_keys[c.region]), Value::String(c.region)}));
    }
    if (nation_keys.emplace(c.nation, nation_keys.size() + 1).second) {
      DIP_RETURN_NOT_OK(nation->Insert({Value::Int(nation_keys[c.nation]),
                                        Value::String(c.nation),
                                        Value::Int(region_keys[c.region])}));
    }
    DIP_RETURN_NOT_OK(city->Insert({Value::Int(i + 1), Value::String(c.city),
                                    Value::Int(nation_keys[c.nation])}));
  }
  for (int i = 0; i < 3; ++i) {
    DIP_RETURN_NOT_OK(lines->Insert(
        {Value::Int(i + 1), Value::String(kProductLines[i])}));
  }
  for (int i = 0; i < 9; ++i) {
    DIP_RETURN_NOT_OK(groups->Insert({Value::Int(i + 1),
                                      Value::String(kProductGroups[i]),
                                      Value::Int(i / 3 + 1)}));
  }
  return Status::OK();
}

Status Initializer::SeedCdbMaster(Rng* rng) {
  // Dirtiness dial of this seeding unit (scenario manifests override the
  // global error_rate per source).
  const double error_rate = config_.ErrorRateFor("cdb_db");
  DIP_ASSIGN_OR_RETURN(Database * cdb, scenario_->db("cdb_db"));
  DIP_ASSIGN_OR_RETURN(Table * customer, cdb->GetTable("customer"));
  DIP_ASSIGN_OR_RETURN(Table * product, cdb->GetTable("product"));
  Sizes sizes = SizesForConfig();
  for (int64_t k = 1; k <= sizes.customers; ++k) {
    bool dirty = rng->NextBool(0.75 * error_rate);  // master-data errors
    DIP_RETURN_NOT_OK(customer->Insert(
        {Value::Int(k),
         dirty ? Value::String("") : Value::String("Customer#" +
                                                   std::to_string(k)),
         Value::Int(CityOf(k)),
         dirty ? Value::String("???") : Value::String(CdbPriority(k)),
         Value::Bool(dirty), Value::Bool(false)}));
  }
  for (int64_t p = 1; p <= sizes.products; ++p) {
    bool dirty = rng->NextBool(0.5 * error_rate);
    DIP_RETURN_NOT_OK(product->Insert(
        {Value::Int(p),
         dirty ? Value::String("") : Value::String("Product#" +
                                                   std::to_string(p)),
         Value::Int(ProductGroupOf(p)), Value::Bool(dirty),
         Value::Bool(false)}));
  }
  return Status::OK();
}

Status Initializer::SeedEuropeDb(const std::string& db_name, int period,
                                 Rng* rng) {
  const double error_rate = config_.ErrorRateFor(db_name);
  DIP_ASSIGN_OR_RETURN(Database * db, scenario_->db(db_name));
  Sizes sizes = SizesForConfig();

  // Region-local master data: European customers (custkey % 3 == 0).
  {
    DIP_ASSIGN_OR_RETURN(Table * kunde, db->GetTable("kunde"));
    DIP_ASSIGN_OR_RETURN(Table * produkt, db->GetTable("produkt"));
    for (int64_t k = 3; k <= sizes.customers; k += 3) {
      const CityRow& c = kCities[CityOf(k) - 1];
      // Europe encodes priority as 1/2/3.
      int64_t prio = std::string(CdbPriority(k)) == "HIGH"     ? 1
                     : std::string(CdbPriority(k)) == "MEDIUM" ? 2
                                                               : 3;
      DIP_RETURN_NOT_OK(kunde->Insert(
          {Value::Int(k), Value::String("Kunde#" + std::to_string(k)),
           Value::String(c.city), Value::String(c.nation), Value::Int(prio)}));
    }
    for (int64_t p = 1; p <= sizes.products; ++p) {
      DIP_RETURN_NOT_OK(produkt->Insert(
          {Value::Int(p), Value::String("Produkt#" + std::to_string(p)),
           Value::String(kProductGroups[ProductGroupOf(p) - 1]),
           Value::String(kProductLines[(ProductGroupOf(p) - 1) / 3])}));
    }
  }

  // Movement data per location hosted by this instance. Berlin and Paris
  // share the eu_berlin_paris database (and its sampler streams);
  // Trondheim's unit draws from its own fork.
  struct Loc {
    const char* location;
    int source_id;
  };
  std::vector<Loc> locs;
  if (db_name == "eu_berlin_paris") {
    locs = {{"berlin", 1}, {"paris", 2}};
  } else {
    locs = {{"trondheim", 3}};
  }
  int64_t eu_customer_count = sizes.customers / 3;
  DistributionSampler cust_sampler(config_.distribution,
                                   std::max<int64_t>(1, eu_customer_count),
                                   rng->Next());
  DistributionSampler prod_sampler(config_.distribution, sizes.products,
                                   rng->Next());
  for (const Loc& loc : locs) {
    DIP_ASSIGN_OR_RETURN(Table * auftrag, db->GetTable("auftrag"));
    DIP_ASSIGN_OR_RETURN(Table * position, db->GetTable("position"));
    int64_t volume = JitteredVolume(sizes.orders_per_eu, rng);
    for (int64_t i = 1; i <= volume; ++i) {
      int64_t anr = OrderKey(period, loc.source_id, i);
      int64_t kdnr = 3 * (1 + static_cast<int64_t>(cust_sampler.Sample()) %
                                  std::max<int64_t>(1, eu_customer_count));
      if (kdnr > sizes.customers) kdnr = 3;
      // Unrepairable reference errors: orders naming unknown customers.
      if (rng->NextBool(0.4 * error_rate)) {
        kdnr = sizes.customers + 100 + i;
      }
      const char* status = i % 7 == 0 ? "STORNO" : "GELIEFERT";
      DIP_RETURN_NOT_OK(auftrag->Insert(
          {Value::Int(anr), Value::Int(kdnr),
           Value::Date(OrderDate(period, i)), Value::String(status),
           Value::String(loc.location)}));
      int64_t n_lines = 1 + static_cast<int64_t>(i % 3);
      for (int64_t pos = 1; pos <= n_lines; ++pos) {
        int64_t pnr = 1 + static_cast<int64_t>(prod_sampler.Sample()) %
                              sizes.products;
        bool dirty = rng->NextBool(error_rate);  // movement errors
        DIP_RETURN_NOT_OK(position->Insert(
            {Value::Int(anr), Value::Int(pos), Value::Int(pnr),
             Value::Int(dirty ? -1 : 1 + static_cast<int64_t>(pos * 2)),
             Value::Double(rng->NextDoubleIn(5.0, 500.0))}));
      }
    }
  }
  return Status::OK();
}

Status Initializer::SeedAsiaService(const std::string& service, int source_id,
                                    int period, Rng* rng) {
  const double error_rate = config_.ErrorRateFor(service);
  Sizes sizes = SizesForConfig();
  int64_t asia_customer_count = (sizes.customers + 1) / 3;
  DIP_ASSIGN_OR_RETURN(Database * db, scenario_->db(service));
  DIP_ASSIGN_OR_RETURN(Table * customer, db->GetTable("customer"));
  DIP_ASSIGN_OR_RETURN(Table * product, db->GetTable("product"));
  DIP_ASSIGN_OR_RETURN(Table * sales, db->GetTable("sales"));
  // Asian customers: custkey % 3 == 1, priority H/M/L.
  for (int64_t k = 1; k <= sizes.customers; k += 3) {
    const CityRow& c = kCities[CityOf(k) - 1];
    const char* prio = std::string(CdbPriority(k)) == "HIGH"     ? "H"
                       : std::string(CdbPriority(k)) == "MEDIUM" ? "M"
                                                                 : "L";
    DIP_RETURN_NOT_OK(customer->Insert(
        {Value::Int(k), Value::String("Cust#" + std::to_string(k)),
         Value::String(c.city), Value::String(c.nation),
         Value::String(prio)}));
  }
  for (int64_t p = 1; p <= sizes.products; ++p) {
    DIP_RETURN_NOT_OK(product->Insert(
        {Value::Int(p), Value::String("Prod#" + std::to_string(p)),
         Value::String(kProductGroups[ProductGroupOf(p) - 1]),
         Value::String(kProductLines[(ProductGroupOf(p) - 1) / 3])}));
  }
  DistributionSampler cust_sampler(config_.distribution,
                                   std::max<int64_t>(1, asia_customer_count),
                                   rng->Next());
  DistributionSampler prod_sampler(config_.distribution, sizes.products,
                                   rng->Next());
  // Beijing and Seoul hold overlapping sales data (their master data is
  // kept in sync by P01): both draw order keys from a SHARED, bounded key
  // domain, so the overlap P09's UNION DISTINCT must eliminate is real
  // and depends on the distribution scale factor f (skewed draws collide
  // far more often). Hongkong keeps disjoint sequential keys — its data
  // arrives as messages (P08), never through the union.
  bool shared_domain = service != "asia_hongkong";
  // Independent draw sequences per service over the SAME key domain.
  DistributionSampler key_sampler(config_.distribution,
                                  2 * sizes.orders_per_asia, rng->Next());
  int64_t volume = JitteredVolume(sizes.orders_per_asia, rng);
  for (int64_t i = 1; i <= volume; ++i) {
    int64_t orderkey;
    int64_t custkey, prodkey, qty;
    int64_t odate;
    if (shared_domain) {
      // A shared order IS the same real-world order: every attribute
      // derives deterministically from the key, so Beijing's and Seoul's
      // copies agree and the UNION DISTINCT can eliminate them.
      int64_t draw = 1 + static_cast<int64_t>(key_sampler.Sample());
      orderkey = OrderKey(period, 4, draw);
      custkey = 1 + 3 * ((draw * 2654435761LL) %
                         std::max<int64_t>(1, asia_customer_count));
      prodkey = 1 + (draw * 40503) % sizes.products;
      qty = draw % 17 == 0 ? 0 : 1 + draw % 5;  // injected errors too
      odate = OrderDate(period, draw);
      rng->Next();  // keep the stream advancing uniformly per row
    } else {
      orderkey = OrderKey(period, source_id, i);
      custkey = 1 + 3 * (static_cast<int64_t>(cust_sampler.Sample()) %
                         std::max<int64_t>(1, asia_customer_count));
      if (rng->NextBool(0.4 * error_rate)) {
        custkey = sizes.customers + 300 + i;  // unrepairable reference
      }
      prodkey =
          1 + static_cast<int64_t>(prod_sampler.Sample()) % sizes.products;
      bool dirty = rng->NextBool(error_rate);
      qty = dirty ? 0 : 1 + static_cast<int64_t>(i % 5);
      odate = OrderDate(period, i);
    }
    if (custkey > sizes.customers) custkey = 1;
    // Price derives from key material so shared copies agree on it.
    double price = 5.0 + static_cast<double>((orderkey * 48271) % 49500) /
                             100.0;
    Row row{Value::Int(orderkey), Value::Int(custkey), Value::Int(prodkey),
            Value::Int(qty),      Value::Double(price),
            Value::Date(odate)};
    DIP_RETURN_NOT_OK(sales->InsertOrReplace(std::move(row)));
  }
  return Status::OK();
}

Status Initializer::SeedAmericaSource(const std::string& source,
                                      int source_id, int period, Rng* rng) {
  const double error_rate = config_.ErrorRateFor(source);
  Sizes sizes = SizesForConfig();
  int64_t us_customer_count = (sizes.customers + 2) / 3;
  DIP_ASSIGN_OR_RETURN(Database * db, scenario_->db(source));
  DIP_ASSIGN_OR_RETURN(Table * customer, db->GetTable("customer"));
  DIP_ASSIGN_OR_RETURN(Table * part, db->GetTable("part"));
  DIP_ASSIGN_OR_RETURN(Table * orders, db->GetTable("orders"));
  DIP_ASSIGN_OR_RETURN(Table * lineitem, db->GetTable("lineitem"));
  // American customers: custkey % 3 == 2, priority URGENT/NORMAL/LOW.
  for (int64_t k = 2; k <= sizes.customers; k += 3) {
    const CityRow& c = kCities[CityOf(k) - 1];
    const char* prio = std::string(CdbPriority(k)) == "HIGH"     ? "URGENT"
                       : std::string(CdbPriority(k)) == "MEDIUM" ? "NORMAL"
                                                                 : "LOW";
    DIP_RETURN_NOT_OK(customer->Insert(
        {Value::Int(k), Value::String("Customer#" + std::to_string(k)),
         Value::String(c.city), Value::String(c.nation),
         Value::String(prio)}));
  }
  for (int64_t p = 1; p <= sizes.products; ++p) {
    DIP_RETURN_NOT_OK(part->Insert(
        {Value::Int(p), Value::String("Part#" + std::to_string(p)),
         Value::String(kProductGroups[ProductGroupOf(p) - 1]),
         Value::String(kProductLines[(ProductGroupOf(p) - 1) / 3])}));
  }
  DistributionSampler cust_sampler(config_.distribution,
                                   std::max<int64_t>(1, us_customer_count),
                                   rng->Next());
  DistributionSampler prod_sampler(config_.distribution, sizes.products,
                                   rng->Next());
  int64_t volume = JitteredVolume(sizes.orders_per_us, rng);
  for (int64_t i = 1; i <= volume; ++i) {
    int64_t okey = OrderKey(period, source_id, i);
    int64_t ckey = 2 + 3 * (static_cast<int64_t>(cust_sampler.Sample()) %
                            std::max<int64_t>(1, us_customer_count));
    if (ckey > sizes.customers) ckey = 2;
    if (rng->NextBool(0.4 * error_rate)) {
      ckey = sizes.customers + 200 + i;  // unrepairable reference error
    }
    DIP_RETURN_NOT_OK(orders->Insert(
        {Value::Int(okey), Value::Int(ckey),
         Value::Date(OrderDate(period, i)),
         Value::String(i % 9 == 0 ? "P" : "F")}));
    int64_t n_lines = 1 + static_cast<int64_t>(i % 2);
    for (int64_t ln = 1; ln <= n_lines; ++ln) {
      int64_t pkey =
          1 + static_cast<int64_t>(prod_sampler.Sample()) % sizes.products;
      bool dirty = rng->NextBool(error_rate);
      DIP_RETURN_NOT_OK(lineitem->Insert(
          {Value::Int(okey), Value::Int(ln), Value::Int(pkey),
           Value::Int(dirty ? -2 : 1 + static_cast<int64_t>(ln * 3)),
           Value::Double(rng->NextDoubleIn(5.0, 500.0))}));
    }
  }
  return Status::OK();
}

Status Initializer::ExportSourceData(net::FileStore* store) {
  static const char* kSourceDbs[] = {
      "eu_berlin_paris", "eu_trondheim", "asia_beijing", "asia_seoul",
      "asia_hongkong",   "us_chicago",   "us_baltimore", "us_madison"};
  for (const char* db_name : kSourceDbs) {
    DIP_ASSIGN_OR_RETURN(Database * db, scenario_->db(db_name));
    for (const std::string& table_name : db->ListTables()) {
      DIP_ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
      RowSet rows;
      rows.schema = table->schema();
      rows.rows = table->ScanAll();
      xml::NodePtr doc = xml::RowSetToXml(rows, "resultset", "row");
      store->Write(std::string(db_name) + "." + table_name + ".xml",
                   xml::WriteXml(*doc, /*indent=*/2));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// E1 message fabrication.
// ---------------------------------------------------------------------------

xml::NodePtr Initializer::MakeBeijingCustomer(int period, int m) {
  Sizes sizes = SizesForConfig();
  int64_t k = 1 + 3 * ((static_cast<int64_t>(period) * 31 + m) %
                       std::max<int64_t>(1, (sizes.customers + 1) / 3));
  const CityRow& c = kCities[CityOf(k) - 1];
  auto doc = std::make_unique<xml::Node>("CustomerB");
  doc->AddText("CKey", std::to_string(k));
  doc->AddText("CName", "Cust#" + std::to_string(k) + "u" +
                            std::to_string(period));
  doc->AddText("City", c.city);
  doc->AddText("Nation", c.nation);
  doc->AddText("Priority", std::string(CdbPriority(k)) == "HIGH"     ? "H"
                           : std::string(CdbPriority(k)) == "MEDIUM" ? "M"
                                                                     : "L");
  return doc;
}

xml::NodePtr Initializer::MakeMdmCustomer(int period, int m) {
  Sizes sizes = SizesForConfig();
  int64_t k = 3 * (1 + (static_cast<int64_t>(period) * 17 + m) %
                           std::max<int64_t>(1, sizes.customers / 3));
  const CityRow& c = kCities[CityOf(k) - 1];
  auto doc = std::make_unique<xml::Node>("KundenStamm");
  doc->AddText("Kdnr", std::to_string(k));
  doc->AddText("Name", "Kunde#" + std::to_string(k) + "v" +
                           std::to_string(period));
  doc->AddText("Stadt", c.city);
  doc->AddText("Land", c.nation);
  doc->AddText("Prio", std::string(CdbPriority(k)) == "HIGH"     ? "1"
                       : std::string(CdbPriority(k)) == "MEDIUM" ? "2"
                                                                 : "3");
  return doc;
}

xml::NodePtr Initializer::MakeViennaOrder(int period, int m) {
  Sizes sizes = SizesForConfig();
  int64_t anr = OrderKey(period, /*source_id=*/10, m);
  int64_t kdnr = 3 * (1 + (static_cast<int64_t>(period) * 13 + m) %
                              std::max<int64_t>(1, sizes.customers / 3));
  auto doc = std::make_unique<xml::Node>("Bestellung");
  doc->AddText("Anr", std::to_string(anr));
  doc->AddText("Kdnr", std::to_string(kdnr));
  doc->AddText("Datum", std::to_string(OrderDate(period, m)));
  int lines = 1 + m % 3;
  for (int i = 1; i <= lines; ++i) {
    xml::Node* pos = doc->AddChild("Position");
    pos->AddText("Pnr", std::to_string(1 + (m * 7 + i) % sizes.products));
    pos->AddText("Menge", std::to_string(1 + (m + i) % 5));
    pos->AddText("Preis",
                 StrFormat("%.2f", 5.0 + msg_rng_.NextDoubleIn(0.0, 495.0)));
  }
  return doc;
}

xml::NodePtr Initializer::MakeHongkongSale(int period, int m) {
  Sizes sizes = SizesForConfig();
  int64_t okey = OrderKey(period, /*source_id=*/11, m);
  int64_t ckey = 1 + 3 * ((static_cast<int64_t>(period) * 19 + m) %
                          std::max<int64_t>(1, (sizes.customers + 1) / 3));
  auto doc = std::make_unique<xml::Node>("sale");
  doc->AddText("orderkey", std::to_string(okey));
  doc->AddText("custkey", std::to_string(ckey));
  doc->AddText("prodkey", std::to_string(1 + (m * 11) % sizes.products));
  doc->AddText("qty", std::to_string(1 + m % 4));
  doc->AddText("price",
               StrFormat("%.2f", 5.0 + msg_rng_.NextDoubleIn(0.0, 495.0)));
  doc->AddText("odate", std::to_string(OrderDate(period, m)));
  return doc;
}

xml::NodePtr Initializer::MakeSanDiegoOrder(int period, int m) {
  Sizes sizes = SizesForConfig();
  int64_t okey = OrderKey(period, /*source_id=*/12, m);
  int64_t ckey = 2 + 3 * ((static_cast<int64_t>(period) * 23 + m) %
                          std::max<int64_t>(1, (sizes.customers + 2) / 3));
  if (ckey > sizes.customers) ckey = 2;
  auto doc = std::make_unique<xml::Node>("SDOrder");
  // "It is assumed that this application is very error-prone": roughly a
  // fifth of the messages violate the XSD in one of several ways.
  int error_kind = (period + m) % 10;
  if (error_kind != 1) doc->AddText("OKey", std::to_string(okey));
  if (error_kind != 3) doc->AddText("CKey", std::to_string(ckey));
  doc->AddText("PKey", std::to_string(1 + (m * 13) % sizes.products));
  doc->AddText("Qty", error_kind == 7 ? "many" : std::to_string(1 + m % 6));
  doc->AddText("Price",
               StrFormat("%.2f", 5.0 + msg_rng_.NextDoubleIn(0.0, 495.0)));
  doc->AddText("ODate", std::to_string(OrderDate(period, m)));
  doc->AddText("Prio", m % 3 == 0 ? "U" : m % 3 == 1 ? "N" : "L");
  return doc;
}

}  // namespace dipbench
