#include "src/dipbench/schemas.h"

namespace dipbench {
namespace schemas {

// ---------------------------------------------------------------------------
// Region Europe: self-defined, normalized schema with German attribute
// names — syntactic heterogeneity against every other region.
// ---------------------------------------------------------------------------

Schema EuropeCustomer() {
  Schema s;
  s.AddColumn("kdnr", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("stadt", DataType::kString)
      .AddColumn("land", DataType::kString)
      .AddColumn("prio", DataType::kInt64)  // 1 / 2 / 3
      .SetPrimaryKey({"kdnr"});
  return s;
}

Schema EuropeProduct() {
  Schema s;
  s.AddColumn("pnr", DataType::kInt64, false)
      .AddColumn("bezeichnung", DataType::kString)
      .AddColumn("gruppe", DataType::kString)
      .AddColumn("linie", DataType::kString)
      .SetPrimaryKey({"pnr"});
  return s;
}

Schema EuropeOrders() {
  Schema s;
  s.AddColumn("anr", DataType::kInt64, false)
      .AddColumn("kdnr", DataType::kInt64, false)
      .AddColumn("datum", DataType::kDate)
      .AddColumn("status", DataType::kString)  // OFFEN / GELIEFERT / STORNO
      .AddColumn("location", DataType::kString)  // berlin / paris / trondheim
      .SetPrimaryKey({"anr"});
  return s;
}

Schema EuropeOrderline() {
  Schema s;
  s.AddColumn("anr", DataType::kInt64, false)
      .AddColumn("pos", DataType::kInt64, false)
      .AddColumn("pnr", DataType::kInt64, false)
      .AddColumn("menge", DataType::kInt64)
      .AddColumn("preis", DataType::kDouble)
      .SetPrimaryKey({"anr", "pos"});
  return s;
}

// ---------------------------------------------------------------------------
// Region Asia: generic result-set schemas hidden behind Web services.
// ---------------------------------------------------------------------------

Schema AsiaCustomer() {
  Schema s;
  s.AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("city", DataType::kString)
      .AddColumn("nation", DataType::kString)
      .AddColumn("priority", DataType::kString)  // H / M / L
      .SetPrimaryKey({"custkey"});
  return s;
}

Schema AsiaProduct() {
  Schema s;
  s.AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("grp", DataType::kString)
      .AddColumn("line", DataType::kString)
      .SetPrimaryKey({"prodkey"});
  return s;
}

Schema AsiaSales() {
  Schema s;
  s.AddColumn("orderkey", DataType::kInt64, false)
      .AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("qty", DataType::kInt64)
      .AddColumn("price", DataType::kDouble)
      .AddColumn("odate", DataType::kDate)
      .SetPrimaryKey({"orderkey"});
  return s;
}

// ---------------------------------------------------------------------------
// Region America: TPC-H-style normalized schema.
// ---------------------------------------------------------------------------

Schema TpchCustomer() {
  Schema s;
  s.AddColumn("c_custkey", DataType::kInt64, false)
      .AddColumn("c_name", DataType::kString)
      .AddColumn("c_city", DataType::kString)
      .AddColumn("c_nation", DataType::kString)
      .AddColumn("c_prio", DataType::kString)  // URGENT / NORMAL / LOW
      .SetPrimaryKey({"c_custkey"});
  return s;
}

Schema TpchPart() {
  Schema s;
  s.AddColumn("p_partkey", DataType::kInt64, false)
      .AddColumn("p_name", DataType::kString)
      .AddColumn("p_group", DataType::kString)
      .AddColumn("p_line", DataType::kString)
      .SetPrimaryKey({"p_partkey"});
  return s;
}

Schema TpchOrders() {
  Schema s;
  s.AddColumn("o_orderkey", DataType::kInt64, false)
      .AddColumn("o_custkey", DataType::kInt64, false)
      .AddColumn("o_orderdate", DataType::kDate)
      .AddColumn("o_status", DataType::kString)  // O / F / P
      .SetPrimaryKey({"o_orderkey"});
  return s;
}

Schema TpchLineitem() {
  Schema s;
  s.AddColumn("l_orderkey", DataType::kInt64, false)
      .AddColumn("l_linenumber", DataType::kInt64, false)
      .AddColumn("l_partkey", DataType::kInt64, false)
      .AddColumn("l_qty", DataType::kInt64)
      .AddColumn("l_price", DataType::kDouble)
      .SetPrimaryKey({"l_orderkey", "l_linenumber"});
  return s;
}

// ---------------------------------------------------------------------------
// Consolidated database / data warehouse (snowflake).
// ---------------------------------------------------------------------------

Schema CdbCustomer() {
  Schema s;
  s.AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("citykey", DataType::kInt64)
      .AddColumn("priority", DataType::kString)  // HIGH / MEDIUM / LOW
      .AddColumn("dirty", DataType::kBool)
      .AddColumn("integrated", DataType::kBool)
      .SetPrimaryKey({"custkey"});
  return s;
}

Schema CdbProduct() {
  Schema s;
  s.AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("groupkey", DataType::kInt64)
      .AddColumn("dirty", DataType::kBool)
      .AddColumn("integrated", DataType::kBool)
      .SetPrimaryKey({"prodkey"});
  return s;
}

Schema ProductGroup() {
  Schema s;
  s.AddColumn("groupkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("linekey", DataType::kInt64)
      .SetPrimaryKey({"groupkey"});
  return s;
}

Schema ProductLine() {
  Schema s;
  s.AddColumn("linekey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .SetPrimaryKey({"linekey"});
  return s;
}

Schema City() {
  Schema s;
  s.AddColumn("citykey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("nationkey", DataType::kInt64)
      .SetPrimaryKey({"citykey"});
  return s;
}

Schema Nation() {
  Schema s;
  s.AddColumn("nationkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("regionkey", DataType::kInt64)
      .SetPrimaryKey({"nationkey"});
  return s;
}

Schema Region() {
  Schema s;
  s.AddColumn("regionkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .SetPrimaryKey({"regionkey"});
  return s;
}

Schema CdbOrders() {
  Schema s;
  s.AddColumn("orderkey", DataType::kInt64, false)
      .AddColumn("custkey", DataType::kInt64)
      .AddColumn("prodkey", DataType::kInt64)
      .AddColumn("citykey", DataType::kInt64)
      .AddColumn("orderdate", DataType::kDate)
      .AddColumn("quantity", DataType::kInt64)
      .AddColumn("price", DataType::kDouble)
      .AddColumn("priority", DataType::kString)
      .AddColumn("source", DataType::kString)  // originating system
      .AddColumn("dirty", DataType::kBool)
      .SetPrimaryKey({"orderkey", "source"});
  return s;
}

Schema DwhCustomer() {
  Schema s;
  s.AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("citykey", DataType::kInt64)
      .AddColumn("priority", DataType::kString)
      .SetPrimaryKey({"custkey"});
  return s;
}

Schema DwhProduct() {
  Schema s;
  s.AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("groupkey", DataType::kInt64)
      .SetPrimaryKey({"prodkey"});
  return s;
}

Schema DwhOrders() {
  Schema s;
  s.AddColumn("orderkey", DataType::kInt64, false)
      .AddColumn("custkey", DataType::kInt64)
      .AddColumn("prodkey", DataType::kInt64)
      .AddColumn("citykey", DataType::kInt64)
      .AddColumn("orderdate", DataType::kDate)
      .AddColumn("quantity", DataType::kInt64)
      .AddColumn("price", DataType::kDouble)
      .AddColumn("priority", DataType::kString)
      .AddColumn("source", DataType::kString)
      .SetPrimaryKey({"orderkey", "source"});
  return s;
}

Schema OrdersMv() {
  Schema s;
  s.AddColumn("year", DataType::kInt64, false)
      .AddColumn("month", DataType::kInt64, false)
      .AddColumn("citykey", DataType::kInt64, false)
      .AddColumn("revenue", DataType::kDouble)
      .AddColumn("order_count", DataType::kInt64)
      .SetPrimaryKey({"year", "month", "citykey"});
  return s;
}

Schema FailedData() {
  Schema s;
  s.AddColumn("id", DataType::kInt64, false)
      .AddColumn("reason", DataType::kString)
      .AddColumn("payload", DataType::kString)
      .SetPrimaryKey({"id"});
  return s;
}

Schema DmCustomerDenorm() {
  Schema s;
  s.AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("city", DataType::kString)
      .AddColumn("nation", DataType::kString)
      .AddColumn("region", DataType::kString)
      .AddColumn("priority", DataType::kString)
      .SetPrimaryKey({"custkey"});
  return s;
}

Schema DmProductDenorm() {
  Schema s;
  s.AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("grp", DataType::kString)
      .AddColumn("line", DataType::kString)
      .SetPrimaryKey({"prodkey"});
  return s;
}

Schema DmOrders() { return DwhOrders(); }

Schema StagedOrder() {
  Schema s;
  s.AddColumn("orderkey", DataType::kInt64, false)
      .AddColumn("custkey", DataType::kInt64)
      .AddColumn("prodkey", DataType::kInt64)
      .AddColumn("orderdate", DataType::kDate)
      .AddColumn("quantity", DataType::kInt64)
      .AddColumn("price", DataType::kDouble)
      .AddColumn("priority", DataType::kString)
      .AddColumn("source", DataType::kString);
  return s;
}

Schema StagedCustomer() {
  Schema s;
  s.AddColumn("custkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("city", DataType::kString)
      .AddColumn("priority", DataType::kString);
  return s;
}

Schema StagedProduct() {
  Schema s;
  s.AddColumn("prodkey", DataType::kInt64, false)
      .AddColumn("name", DataType::kString)
      .AddColumn("grp", DataType::kString);
  return s;
}

// ---------------------------------------------------------------------------
// XSDs for business messages.
// ---------------------------------------------------------------------------

std::shared_ptr<const xml::XsdSchema> ViennaOrderXsd() {
  auto xsd = std::make_shared<xml::XsdSchema>("Bestellung");
  xsd->Element("Bestellung",
               xml::Container({xml::Required("Anr"), xml::Required("Kdnr"),
                               xml::Required("Datum"),
                               xml::Repeated("Position", 1)}));
  xsd->Element("Anr", xml::Leaf(DataType::kInt64));
  xsd->Element("Kdnr", xml::Leaf(DataType::kInt64));
  xsd->Element("Datum", xml::Leaf(DataType::kDate));
  xsd->Element("Position",
               xml::Container({xml::Required("Pnr"), xml::Required("Menge"),
                               xml::Required("Preis")}));
  xsd->Element("Pnr", xml::Leaf(DataType::kInt64));
  xsd->Element("Menge", xml::Leaf(DataType::kInt64));
  xsd->Element("Preis", xml::Leaf(DataType::kDouble));
  return xsd;
}

std::shared_ptr<const xml::XsdSchema> MdmCustomerXsd() {
  auto xsd = std::make_shared<xml::XsdSchema>("KundenStamm");
  xsd->Element("KundenStamm",
               xml::Container({xml::Required("Kdnr"), xml::Required("Name"),
                               xml::Required("Stadt"), xml::Required("Land"),
                               xml::Required("Prio")}));
  xsd->Element("Kdnr", xml::Leaf(DataType::kInt64));
  xsd->Element("Prio", xml::Leaf(DataType::kInt64));
  return xsd;
}

std::shared_ptr<const xml::XsdSchema> HongkongSalesXsd() {
  auto xsd = std::make_shared<xml::XsdSchema>("sale");
  xsd->Element("sale", xml::Container({xml::Required("orderkey"),
                                       xml::Required("custkey"),
                                       xml::Required("prodkey"),
                                       xml::Required("qty"),
                                       xml::Required("price"),
                                       xml::Required("odate")}));
  xsd->Element("orderkey", xml::Leaf(DataType::kInt64));
  xsd->Element("custkey", xml::Leaf(DataType::kInt64));
  xsd->Element("prodkey", xml::Leaf(DataType::kInt64));
  xsd->Element("qty", xml::Leaf(DataType::kInt64));
  xsd->Element("price", xml::Leaf(DataType::kDouble));
  xsd->Element("odate", xml::Leaf(DataType::kDate));
  return xsd;
}

std::shared_ptr<const xml::XsdSchema> SanDiegoOrderXsd() {
  auto xsd = std::make_shared<xml::XsdSchema>("SDOrder");
  xsd->Element("SDOrder",
               xml::Container({xml::Required("OKey"), xml::Required("CKey"),
                               xml::Required("PKey"), xml::Required("Qty"),
                               xml::Required("Price"), xml::Required("ODate"),
                               xml::Optional("Prio")}));
  xsd->Element("OKey", xml::Leaf(DataType::kInt64));
  xsd->Element("CKey", xml::Leaf(DataType::kInt64));
  xsd->Element("PKey", xml::Leaf(DataType::kInt64));
  xsd->Element("Qty", xml::Leaf(DataType::kInt64));
  xsd->Element("Price", xml::Leaf(DataType::kDouble));
  xsd->Element("ODate", xml::Leaf(DataType::kDate));
  return xsd;
}

std::shared_ptr<const xml::XsdSchema> BeijingCustomerXsd() {
  auto xsd = std::make_shared<xml::XsdSchema>("CustomerB");
  xsd->Element("CustomerB",
               xml::Container({xml::Required("CKey"), xml::Required("CName"),
                               xml::Required("City"), xml::Required("Nation"),
                               xml::Required("Priority")}));
  xsd->Element("CKey", xml::Leaf(DataType::kInt64));
  xsd->Element("Priority", xml::Leaf(DataType::kString));
  return xsd;
}

// ---------------------------------------------------------------------------
// STX translations.
// ---------------------------------------------------------------------------

std::shared_ptr<const xml::StxTransformer> BeijingToSeoulStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "CustomerB";
  rule.rename_to = "CustomerS";
  rule.field_renames = {{"CKey", "custkey"}, {"CName", "name"},
                        {"City", "city"},   {"Nation", "nation"},
                        {"Priority", "priority"}};
  stx->AddRule(std::move(rule));
  return stx;
}

std::shared_ptr<const xml::StxTransformer> MdmToEuropeStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "KundenStamm";
  rule.rename_to = "kunde";
  rule.field_renames = {{"Kdnr", "kdnr"}, {"Name", "name"},
                        {"Stadt", "stadt"}, {"Land", "land"},
                        {"Prio", "prio"}};
  stx->AddRule(std::move(rule));
  return stx;
}

std::shared_ptr<const xml::StxTransformer> ViennaToCdbStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule order;
  order.match = "Bestellung";
  order.rename_to = "order";
  order.field_renames = {{"Anr", "orderkey"}, {"Kdnr", "custkey"},
                         {"Datum", "orderdate"}, {"Prio", "priority"}};
  order.add_fields = {{"source", "vienna"}};
  stx->AddRule(std::move(order));
  xml::StxRule line;
  line.match = "Position";
  line.rename_to = "line";
  line.field_renames = {{"Pnr", "prodkey"}, {"Menge", "quantity"},
                        {"Preis", "price"}};
  stx->AddRule(std::move(line));
  return stx;
}

std::shared_ptr<const xml::StxTransformer> HongkongToCdbStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "sale";
  rule.rename_to = "order";
  rule.field_renames = {{"qty", "quantity"}, {"odate", "orderdate"}};
  rule.add_fields = {{"source", "hongkong"}};
  stx->AddRule(std::move(rule));
  return stx;
}

namespace {

/// The Asia result-set rows carry H/M/L priorities; the CDB speaks
/// HIGH/MEDIUM/LOW — a semantic heterogeneity resolved in the translation.
std::map<std::string, std::string> AsiaPriorityMap() {
  return {{"H", "HIGH"}, {"M", "MEDIUM"}, {"L", "LOW"}};
}

}  // namespace

std::shared_ptr<const xml::StxTransformer> BeijingToCdbStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "row";
  rule.field_renames = {{"qty", "quantity"}, {"odate", "orderdate"}};
  rule.value_maps = {{"priority", AsiaPriorityMap()}};
  rule.add_fields = {{"source", "beijing"}};
  stx->AddRule(std::move(rule));
  return stx;
}

std::shared_ptr<const xml::StxTransformer> SeoulToCdbStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "row";
  rule.field_renames = {{"qty", "quantity"}, {"odate", "orderdate"}};
  rule.value_maps = {{"priority", AsiaPriorityMap()}};
  rule.add_fields = {{"source", "seoul"}};
  stx->AddRule(std::move(rule));
  return stx;
}

std::shared_ptr<const xml::StxTransformer> SanDiegoToCdbStx() {
  auto stx = std::make_shared<xml::StxTransformer>();
  xml::StxRule rule;
  rule.match = "SDOrder";
  rule.rename_to = "order";
  rule.field_renames = {{"OKey", "orderkey"}, {"CKey", "custkey"},
                        {"PKey", "prodkey"},  {"Qty", "quantity"},
                        {"Price", "price"},   {"ODate", "orderdate"},
                        {"Prio", "priority"}};
  rule.value_maps = {
      {"priority", {{"U", "HIGH"}, {"N", "MEDIUM"}, {"L", "LOW"}}}};
  rule.add_fields = {{"source", "san_diego"}};
  stx->AddRule(std::move(rule));
  return stx;
}

}  // namespace schemas
}  // namespace dipbench
