#ifndef DIPBENCH_DIPBENCH_CLIENT_H_
#define DIPBENCH_DIPBENCH_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/dipbench/config.h"
#include "src/dipbench/datagen.h"
#include "src/dipbench/monitor.h"
#include "src/dipbench/scenario.h"
#include "src/dipbench/verify.h"

namespace dipbench {

/// Result of one full benchmark run.
struct BenchmarkResult {
  ScaleConfig config;
  std::string engine_name;
  std::vector<ProcessMetrics> per_process;
  VerificationReport verification;
  double virtual_ms = 0.0;  ///< final engine virtual time
  double wall_ms = 0.0;     ///< real elapsed time of the run

  /// Recovery summary (all zero when faults/retries are off).
  uint64_t retries = 0;       ///< extra attempts across all instances
  uint64_t dead_letters = 0;  ///< instances parked by the retry policy

  /// The Fig. 10/11-style plot.
  std::string RenderPlot() const;
  /// NAVG+ of one process type (0 when the type never ran).
  double NavgPlus(const std::string& process_id) const;
};

/// The toolsuite's Client (paper Section V): owns the execution schedule —
/// pre phase (deploy + initialize), work phase (the benchmark periods with
/// their four streams), post phase (verification) — and drives the system
/// under test through process-initiating events.
///
/// Stream handling per period k:
///   * Streams A and B are concurrent: all E1 series (P01, P02, P04, P08,
///     P10) are scheduled by their Table II series; the dependency-driven
///     time events inside the streams (P03 after P01^P02; P05..P07 after
///     P04; P09 after P08) are scheduled at their predecessors' series end
///     plus a fixed gap, so they interleave in the same event queue.
///   * P11 fires after stream B drained (tau_1 of stream B).
///   * Stream C (P12, P13 at +10 tu) and stream D (P14, then P15) are
///     serialized "in order to ensure the correct results".
class Client {
 public:
  Client(Scenario* scenario, core::IntegrationSystem* engine,
         const ScaleConfig& config);

  /// Deploys the 15 process types (idempotent per engine).
  Status DeployProcesses();

  /// Attaches an observer: each benchmark period and each stream within it
  /// becomes a span on a dedicated client track, and period counters are
  /// kept. Pass the same ObsContext to the engine (SetObserver) and the
  /// scenario network for a full trace; the Client only records its own
  /// scheduling structure.
  void SetObserver(obs::ObsContext obs);

  /// Runs the complete benchmark: pre, work (config.periods), post.
  Result<BenchmarkResult> Run();

  /// Runs a single period (exposed for tests and custom harnesses).
  Status RunPeriod(int k);

 private:
  /// Submits an E1 series with generated messages at its schedule times.
  Status SubmitSeries(const std::string& process_id, int k, double t0_ms);

  Scenario* scenario_;
  core::IntegrationSystem* engine_;
  ScaleConfig config_;
  Initializer initializer_;
  obs::ObsContext obs_;
};

}  // namespace dipbench

#endif  // DIPBENCH_DIPBENCH_CLIENT_H_
