#ifndef DIPBENCH_RA_QUERY_H_
#define DIPBENCH_RA_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/ra/plan.h"

namespace dipbench {

/// Fluent wrapper over the plan-node constructors, so examples and process
/// definitions read top-down:
///
///   auto result = Query::From(orders)
///                     .Where(Gt(Col("total"), Lit(100.0)))
///                     .Select({{"okey", Col("o_orderkey")}})
///                     .OrderBy({{"okey", true}})
///                     .Run(&ctx);
class Query {
 public:
  static Query From(const Table* table) { return Query(ScanTable(table)); }
  static Query From(RowSet rows) { return Query(ScanValues(std::move(rows))); }
  static Query From(PlanPtr plan) { return Query(std::move(plan)); }

  Query Where(ExprPtr predicate) && {
    return Query(Filter(std::move(plan_), std::move(predicate)));
  }
  Query Select(std::vector<ProjectionItem> items) && {
    return Query(Project(std::move(plan_), std::move(items)));
  }
  Query Join(Query right, std::vector<std::string> left_keys,
             std::vector<std::string> right_keys) && {
    return Query(HashJoin(std::move(plan_), std::move(right.plan_),
                          std::move(left_keys), std::move(right_keys)));
  }
  Query Union(Query other, std::vector<std::string> key_columns) && {
    std::vector<PlanPtr> children{std::move(plan_), std::move(other.plan_)};
    return Query(UnionDistinct(std::move(children), std::move(key_columns)));
  }
  Query GroupBy(std::vector<std::string> group_by,
                std::vector<AggregateItem> aggs) && {
    return Query(
        Aggregate(std::move(plan_), std::move(group_by), std::move(aggs)));
  }
  Query OrderBy(std::vector<SortKey> keys) && {
    return Query(Sort(std::move(plan_), std::move(keys)));
  }
  Query Take(size_t n) && { return Query(Limit(std::move(plan_), n)); }
  Query DistinctRows() && { return Query(Distinct(std::move(plan_))); }

  /// Executes the built plan.
  Result<RowSet> Run(ExecContext* ctx) const { return plan_->Execute(ctx); }

  /// Access to the underlying plan (for embedding into larger plans).
  const PlanPtr& plan() const { return plan_; }

 private:
  explicit Query(PlanPtr plan) : plan_(std::move(plan)) {}
  PlanPtr plan_;
};

}  // namespace dipbench

#endif  // DIPBENCH_RA_QUERY_H_
