#ifndef DIPBENCH_RA_PLAN_H_
#define DIPBENCH_RA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ra/expr.h"
#include "src/storage/table.h"
#include "src/types/schema.h"

namespace dipbench {

/// A materialized intermediate result: schema + rows. The engine
/// materializes between operators — mirroring the paper's Fig. 9b, where
/// integration processes stage data through "temporary tables (local
/// materialization points)".
struct RowSet {
  Schema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  /// Approximate wire size, used for communication-cost accounting.
  size_t ByteSize() const;
};

/// Execution-side counters consumed by the cost model: every operator adds
/// the rows it touches, so processing cost is derived from work done rather
/// than from wall-clock time (deterministic across machines).
struct ExecContext {
  uint64_t rows_processed = 0;
  uint64_t operator_invocations = 0;
};

/// Base class for materializing plan operators.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  /// Executes the subtree and returns the materialized result.
  virtual Result<RowSet> Execute(ExecContext* ctx) const = 0;
  /// One-line description (operator name + parameters).
  virtual std::string ToString() const = 0;
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// One output column of a projection: name + defining expression (+ optional
/// forced output type; kNull means "leave as evaluated").
struct ProjectionItem {
  std::string name;
  ExprPtr expr;
  DataType cast_to = DataType::kNull;
};

/// Aggregate function kinds for AggregateNode.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct AggregateItem {
  std::string output_name;
  AggFunc func = AggFunc::kCount;
  /// Input column name; empty for COUNT(*).
  std::string input_column;
};

/// Sort key for SortNode.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Leaf: scans all live rows of a storage table.
PlanPtr ScanTable(const Table* table);
/// Leaf: range scan over an ordered index of the table: rows whose indexed
/// column lies in [lo, hi] (a NULL bound is open), in ascending index
/// order. The index must exist (CreateOrderedIndex).
PlanPtr IndexRangeScan(const Table* table, std::string index_name, Value lo,
                       Value hi);
/// Leaf: wraps an already materialized row set.
PlanPtr ScanValues(RowSet rows);
/// σ: keeps rows for which `predicate` evaluates to true.
PlanPtr Filter(PlanPtr child, ExprPtr predicate);
/// π: computes the given output columns (also does renaming / casting).
PlanPtr Project(PlanPtr child, std::vector<ProjectionItem> items);
/// Inner hash equi-join on (left_keys[i] == right_keys[i]).
/// Output schema concatenates left columns then right columns; name
/// collisions on the right get a "r_" prefix.
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys);
/// UNION DISTINCT over the inputs. All inputs must have compatible arity.
/// Distinctness is decided on `key_columns` of the first input's schema
/// (empty = whole row), matching the paper's "UNION DISTINCT, Ordkey" usage.
PlanPtr UnionDistinct(std::vector<PlanPtr> children,
                      std::vector<std::string> key_columns);
/// δ: removes duplicate rows (whole-row distinct).
PlanPtr Distinct(PlanPtr child);
/// γ: grouped aggregation. Empty `group_by` yields one global row.
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates);
/// Stable multi-key sort.
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys);
/// Keeps the first `limit` rows.
PlanPtr Limit(PlanPtr child, size_t limit);

/// Inserts every result row into `table` (append; duplicate-key rows are
/// counted and skipped, not errors — ETL "upsert-tolerant" loading).
/// Returns the number of rows actually inserted.
Result<size_t> InsertInto(Table* table, const RowSet& rows);
/// Like InsertInto but replaces rows on key conflicts.
Result<size_t> UpsertInto(Table* table, const RowSet& rows);

}  // namespace dipbench

#endif  // DIPBENCH_RA_PLAN_H_
