#ifndef DIPBENCH_RA_PLAN_H_
#define DIPBENCH_RA_PLAN_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ra/expr.h"
#include "src/storage/table.h"
#include "src/types/column.h"
#include "src/types/schema.h"

namespace dipbench {

/// A materialized intermediate result: schema + rows. The engine can
/// materialize between operators — mirroring the paper's Fig. 9b, where
/// integration processes stage data through "temporary tables (local
/// materialization points)" — or stream batches between them (see BatchCursor
/// below); both produce identical RowSets and cost counters.
struct RowSet {
  Schema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  /// Approximate wire size, used for communication-cost accounting.
  /// Cached: recomputed only when the row count changes since the last call
  /// (operators in this engine never mutate values in place at constant
  /// cardinality — sorting permutes rows, which preserves the byte size).
  size_t ByteSize() const;

  // ByteSize memo; internal. Trailing members keep the struct an aggregate.
  mutable size_t byte_size_cache_ = 0;
  mutable size_t byte_size_cache_rows_ = SIZE_MAX;
};

/// Execution-side counters consumed by the cost model: every operator adds
/// the rows it touches, so processing cost is derived from work done rather
/// than from wall-clock time (deterministic across machines). Both execution
/// modes produce identical totals for a fully drained plan.
struct ExecContext {
  uint64_t rows_processed = 0;
  uint64_t operator_invocations = 0;
};

/// How plans execute.
///   kMaterialize — every operator produces a full RowSet (legacy behavior).
///   kPipeline    — operators stream fixed-capacity batches through an
///                  Open/Next/Close cursor chain; only inherently blocking
///                  operators (sort, aggregation, union-distinct, index range
///                  scan, and the hash-join build side) materialize.
///   kColumnar    — like kPipeline, but scan→filter→project prefixes run as
///                  column-at-a-time kernels over shared table snapshots
///                  (selection vectors instead of row copies) and grouped
///                  aggregation uses a vectorized hash path; a shim converts
///                  columns back to rows where a row-only operator takes
///                  over. Rows, schemas, and cost counters are identical to
///                  the other modes.
enum class ExecMode { kMaterialize, kPipeline, kColumnar };

/// Per-THREAD execution mode, defaulting to kPipeline on every thread. Each
/// DES engine runs single-threaded, but independent benchmark runs may now
/// execute on concurrent harness threads (src/harness), so the mode lives in
/// thread-local storage: a ScopedExecMode on one run's thread can never leak
/// into a co-scheduled run. Threads do NOT inherit the spawning thread's
/// mode — the harness re-applies the submitting thread's mode per job.
ExecMode CurrentExecMode();
void SetExecMode(ExecMode mode);

/// RAII mode override for tests and benchmarks (this thread only).
class ScopedExecMode {
 public:
  explicit ScopedExecMode(ExecMode mode) : prev_(CurrentExecMode()) {
    SetExecMode(mode);
  }
  ~ScopedExecMode() { SetExecMode(prev_); }
  ScopedExecMode(const ScopedExecMode&) = delete;
  ScopedExecMode& operator=(const ScopedExecMode&) = delete;

 private:
  ExecMode prev_;
};

/// Target number of rows per streamed batch. Cardinality-expanding operators
/// (hash join) may overshoot for a single batch instead of buffering.
inline constexpr size_t kBatchCapacity = 1024;

/// One chunk of rows flowing through a cursor chain. A batch is either
/// *owned* (`rows` filled, `refs` empty — operators that build new rows:
/// projection, join output, the materializing adapter) or *borrowed*
/// (`refs` filled, `rows` empty — leaf scans point straight into table /
/// RowSet storage, and pass-through operators like filter and limit forward
/// the pointers). Borrowed pointees stay valid only until the next Next()
/// or Close() call on the cursor that produced them, which is exactly the
/// window a pull-based consumer uses them in.
struct Batch {
  std::vector<Row> rows;
  std::vector<const Row*> refs;

  bool borrowed() const { return !refs.empty(); }
  size_t size() const { return borrowed() ? refs.size() : rows.size(); }
  bool empty() const { return rows.empty() && refs.empty(); }
  void clear() {
    rows.clear();
    refs.clear();
  }
  const Row& row(size_t i) const { return borrowed() ? *refs[i] : rows[i]; }
};

/// Pull-based iterator over a plan subtree (Volcano style, batch at a time).
///
/// Protocol: Open() once, then Next() repeatedly until it leaves the batch
/// empty (end of stream), then Close(). An empty batch always means end of
/// stream — operators that filter rows keep pulling internally rather than
/// emit empty non-final batches. schema() may carry provisional column types
/// (kNull) while the stream is in flight for type-inferring operators
/// (Project); it is final once end of stream has been observed, which is the
/// only point the engine reads it.
class BatchCursor {
 public:
  virtual ~BatchCursor() = default;
  virtual Status Open() = 0;
  /// Clears `*batch` and fills it with up to kBatchCapacity rows.
  virtual Status Next(Batch* batch) = 0;
  virtual void Close() = 0;
  virtual const Schema& schema() const = 0;
};

using CursorPtr = std::unique_ptr<BatchCursor>;

/// Pull-based iterator that yields columnar batches (same protocol as
/// BatchCursor: Open once, Next until the batch comes back empty, Close).
/// Batches alias immutable shared column arrays — a filter narrows the
/// selection vector without touching a single cell. Only a prefix of a plan
/// (scan → filter → project over supported shapes) runs columnar; the
/// ColumnShimCursor in plan.cc adapts the boundary back to row batches.
class ColumnarCursor {
 public:
  virtual ~ColumnarCursor() = default;
  virtual Status Open() = 0;
  /// Clears `*batch` and fills it with the next chunk; empty = end of
  /// stream.
  virtual Status Next(ColumnBatch* batch) = 0;
  virtual void Close() = 0;
  virtual const Schema& schema() const = 0;
};

using ColumnarCursorPtr = std::unique_ptr<ColumnarCursor>;

/// Opens `cursor`, pulls it to end of stream, and returns the accumulated
/// RowSet (schema read after end of stream, when it is final).
Result<RowSet> DrainCursor(BatchCursor* cursor);

/// Base class for plan operators. Execution dispatches on CurrentExecMode():
/// materializing mode calls the node's ExecuteMaterialized recursively;
/// pipelined mode builds a cursor chain via MakeCursor and drains it. Both
/// paths yield identical rows, schemas, and ExecContext totals.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Executes the subtree and returns the materialized result (dispatching
  /// on the current execution mode).
  Result<RowSet> Execute(ExecContext* ctx) const;

  /// Returns a batch cursor over this subtree. The base implementation
  /// adapts ExecuteMaterialized (materialize at Open, then emit batches);
  /// streaming operators override it with true pipelined cursors. Blocking
  /// operators keep the adapter — their children still stream, because the
  /// adapter executes them through the mode-dispatching Execute().
  virtual CursorPtr MakeCursor(ExecContext* ctx) const;

  /// Returns a columnar cursor over this subtree, or nullptr when the
  /// operator (or this instance's parameters) has no columnar kernel. The
  /// default is nullptr; scan/filter/project override it. Callers fall
  /// back to MakeCursor when they get nullptr, so partial support is fine.
  virtual ColumnarCursorPtr MakeColumnarCursor(ExecContext* ctx) const;

  /// One-line description (operator name + parameters).
  virtual std::string ToString() const = 0;

 protected:
  /// Executes the subtree with full materialization between operators.
  /// Children are invoked through Execute(), so in pipelined mode a blocking
  /// operator's inputs are still produced by streaming.
  virtual Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const = 0;
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// One output column of a projection: name + defining expression (+ optional
/// forced output type; kNull means "leave as evaluated").
struct ProjectionItem {
  std::string name;
  ExprPtr expr;
  DataType cast_to = DataType::kNull;
};

/// Aggregate function kinds for AggregateNode.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct AggregateItem {
  std::string output_name;
  AggFunc func = AggFunc::kCount;
  /// Input column name; empty for COUNT(*).
  std::string input_column;
};

/// Sort key for SortNode.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Leaf: scans all live rows of a storage table (streams straight from the
/// table's batch cursor in pipelined mode — no up-front full copy).
PlanPtr ScanTable(const Table* table);
/// Leaf: range scan over an ordered index of the table: rows whose indexed
/// column lies in [lo, hi] (a NULL bound is open), in ascending index
/// order. The index must exist (CreateOrderedIndex).
PlanPtr IndexRangeScan(const Table* table, std::string index_name, Value lo,
                       Value hi);
/// Leaf: wraps an already materialized row set (owned copy).
PlanPtr ScanValues(RowSet rows);
/// Leaf: like ScanValues but borrows the row set — `rows` must outlive every
/// Execute()/cursor drain of the returned plan. Avoids copying bulk inputs
/// into the plan (the common case in operator bodies).
PlanPtr ScanValuesRef(const RowSet* rows);
/// σ: keeps rows for which `predicate` evaluates to true.
PlanPtr Filter(PlanPtr child, ExprPtr predicate);
/// π: computes the given output columns (also does renaming / casting).
PlanPtr Project(PlanPtr child, std::vector<ProjectionItem> items);
/// Inner hash equi-join on (left_keys[i] == right_keys[i]).
/// Output schema concatenates left columns then right columns; name
/// collisions on the right get a "r_" prefix. The right (build) side is
/// blocking; the left (probe) side streams.
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys);
/// UNION DISTINCT over the inputs. All inputs must have compatible arity.
/// Distinctness is decided on `key_columns` of the first input's schema
/// (empty = whole row), matching the paper's "UNION DISTINCT, Ordkey" usage.
PlanPtr UnionDistinct(std::vector<PlanPtr> children,
                      std::vector<std::string> key_columns);
/// δ: removes duplicate rows (whole-row distinct).
PlanPtr Distinct(PlanPtr child);
/// γ: grouped aggregation. Empty `group_by` yields one global row.
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates);
/// Stable multi-key sort.
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys);
/// Keeps the first `limit` rows. Streaming cursors short-circuit: once the
/// limit is reached the child is closed eagerly and nothing more is pulled,
/// so upstream rows_read/rows_processed are bounded by O(limit + batch
/// size) instead of the full input (SPECIFICATION.md §14.4 documents the
/// resulting counter difference vs. materializing mode).
PlanPtr Limit(PlanPtr child, size_t limit);

/// Inserts every result row into `table` (append; duplicate-key rows are
/// counted and skipped, not errors — ETL "upsert-tolerant" loading).
/// Returns the number of rows actually inserted.
Result<size_t> InsertInto(Table* table, const RowSet& rows);
/// Like InsertInto but replaces rows on key conflicts.
Result<size_t> UpsertInto(Table* table, const RowSet& rows);

}  // namespace dipbench

#endif  // DIPBENCH_RA_PLAN_H_
