#include "src/ra/plan.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "src/common/string_util.h"

namespace dipbench {

size_t RowSet::ByteSize() const {
  // Memoized per row count: operators never mutate values in place at
  // constant cardinality, so a matching count means an unchanged payload.
  if (byte_size_cache_rows_ == rows.size()) return byte_size_cache_;
  size_t total = 0;
  for (const auto& r : rows) {
    for (const auto& v : r) total += v.ByteSize();
  }
  byte_size_cache_ = total;
  byte_size_cache_rows_ = rows.size();
  return total;
}

namespace {
// Engine-wide execution mode. The engine is a single-threaded discrete-event
// simulation, so a plain global suffices.
thread_local ExecMode g_exec_mode = ExecMode::kPipeline;
}  // namespace

ExecMode CurrentExecMode() { return g_exec_mode; }
void SetExecMode(ExecMode mode) { g_exec_mode = mode; }

Result<RowSet> DrainCursor(BatchCursor* cursor) {
  DIP_RETURN_NOT_OK(cursor->Open());
  RowSet out;
  Batch batch;
  for (;;) {
    DIP_RETURN_NOT_OK(cursor->Next(&batch));
    if (batch.empty()) break;
    // No per-batch reserve: exact-sized reserves would defeat the vector's
    // geometric growth and reallocate once per batch. Borrowed batches are
    // copied (their pointees die with the next Next()); owned ones move.
    if (batch.borrowed()) {
      for (const Row* row : batch.refs) out.rows.push_back(*row);
    } else {
      for (Row& row : batch.rows) out.rows.push_back(std::move(row));
    }
  }
  // Read the schema only after end of stream: type-inferring operators
  // (Project) finalize it as the last rows pass through.
  out.schema = cursor->schema();
  cursor->Close();
  return out;
}

namespace {

/// Adapter that materializes a full RowSet at Open() and then emits it in
/// batches. Serves as the default cursor for blocking operators; their
/// children still stream because the producer runs them through the
/// mode-dispatching PlanNode::Execute().
class RowSetCursor : public BatchCursor {
 public:
  explicit RowSetCursor(std::function<Result<RowSet>()> producer)
      : producer_(std::move(producer)) {}

  Status Open() override {
    DIP_ASSIGN_OR_RETURN(data_, producer_());
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, data_.rows.size() - pos_);
    batch->rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch->rows.push_back(std::move(data_.rows[pos_ + i]));
    }
    pos_ += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return data_.schema; }

 private:
  std::function<Result<RowSet>()> producer_;
  RowSet data_;
  size_t pos_ = 0;
};

}  // namespace

Result<RowSet> PlanNode::Execute(ExecContext* ctx) const {
  if (CurrentExecMode() == ExecMode::kMaterialize) {
    return ExecuteMaterialized(ctx);
  }
  CursorPtr cursor = MakeCursor(ctx);
  return DrainCursor(cursor.get());
}

CursorPtr PlanNode::MakeCursor(ExecContext* ctx) const {
  return std::make_unique<RowSetCursor>(
      [this, ctx] { return ExecuteMaterialized(ctx); });
}

namespace {

/// Read-only view of a batch for vectorized evaluation: borrowed batches
/// already are pointer vectors; owned ones get one built in `scratch`.
const RowRefs& BatchView(const Batch& in, RowRefs* scratch) {
  if (in.borrowed() || in.rows.empty()) return in.refs;
  scratch->clear();
  scratch->reserve(in.rows.size());
  for (const Row& row : in.rows) scratch->push_back(&row);
  return *scratch;
}

/// Streams a table's live rows through Table::ScanCursor as borrowed
/// pointers — neither an up-front full copy nor per-batch row copies.
class ScanTableCursor : public BatchCursor {
 public:
  ScanTableCursor(const Table* table, ExecContext* ctx)
      : table_(table), ctx_(ctx), cursor_(table->Scan()) {}

  Status Open() override {
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = cursor_.NextBatchRefs(&batch->refs, kBatchCapacity);
    ctx_->rows_processed += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  ExecContext* ctx_;
  Table::ScanCursor cursor_;
};

/// Streams an in-memory RowSet it does not own, one chunk at a time.
class RowSliceCursor : public BatchCursor {
 public:
  RowSliceCursor(const RowSet* data, ExecContext* ctx)
      : data_(data), ctx_(ctx) {}

  Status Open() override {
    ctx_->operator_invocations++;
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, data_->rows.size() - pos_);
    batch->refs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch->refs.push_back(&data_->rows[pos_ + i]);
    }
    pos_ += n;
    ctx_->rows_processed += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return data_->schema; }

 private:
  const RowSet* data_;
  ExecContext* ctx_;
  size_t pos_ = 0;
};

class FilterCursor : public BatchCursor {
 public:
  FilterCursor(CursorPtr child, ExprPtr predicate, ExecContext* ctx)
      : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    // Pull until some rows survive the predicate or the child is exhausted:
    // an empty batch must mean end of stream.
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in_));
      if (in_.empty()) return Status::OK();
      ctx_->rows_processed += in_.size();
      const RowRefs& view = BatchView(in_, &view_scratch_);
      DIP_RETURN_NOT_OK(predicate_->EvalBatch(view, child_->schema(), &keep_));
      // Dropped rows are never copied: borrowed inputs forward the kept
      // pointers; owned inputs move the kept rows out.
      for (size_t i = 0; i < in_.size(); ++i) {
        const Value& k = keep_[i];
        if (!k.is_null() && k.type() == DataType::kBool && k.AsBool()) {
          if (in_.borrowed()) {
            batch->refs.push_back(in_.refs[i]);
          } else {
            batch->rows.push_back(std::move(in_.rows[i]));
          }
        }
      }
      if (!batch->empty()) return Status::OK();
    }
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_;
  Batch in_;
  RowRefs view_scratch_;
  std::vector<Value> keep_;
};

class ProjectCursor : public BatchCursor {
 public:
  ProjectCursor(CursorPtr child, const std::vector<ProjectionItem>* items,
                ExecContext* ctx)
      : child_(std::move(child)),
        items_(items),
        ctx_(ctx),
        inferred_(items->size(), DataType::kNull) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    RebuildSchema();
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    DIP_RETURN_NOT_OK(child_->Next(&in_));
    if (in_.empty()) return Status::OK();
    ctx_->rows_processed += in_.size();
    const Schema& in_schema = child_->schema();
    const auto& items = *items_;
    const RowRefs& view = BatchView(in_, &view_scratch_);
    // Column-at-a-time: one EvalBatch per projection item per batch. Bare
    // uncast column references skip the value buffer entirely — the index is
    // resolved once per batch and values are copied straight from the input
    // rows in the row-build loop below.
    cols_.resize(items.size());
    col_idx_.assign(items.size(), SIZE_MAX);
    bool inferred_changed = false;
    for (size_t i = 0; i < items.size(); ++i) {
      const std::string* col = items[i].cast_to == DataType::kNull
                                   ? ColumnRefName(*items[i].expr)
                                   : nullptr;
      if (col != nullptr) {
        DIP_ASSIGN_OR_RETURN(size_t idx, in_schema.RequireIndexOf(*col));
        for (const Row* row : view) {
          if (idx >= row->size()) {
            return Status::Internal("row narrower than schema");
          }
        }
        col_idx_[i] = idx;
        if (inferred_[i] == DataType::kNull) {
          for (const Row* row : view) {
            if (!(*row)[idx].is_null()) {
              inferred_[i] = (*row)[idx].type();
              inferred_changed = true;
              break;
            }
          }
        }
        continue;
      }
      DIP_RETURN_NOT_OK(items[i].expr->EvalBatch(view, in_schema, &cols_[i]));
      if (items[i].cast_to != DataType::kNull) {
        for (Value& v : cols_[i]) {
          DIP_ASSIGN_OR_RETURN(v, v.CastTo(items[i].cast_to));
        }
      }
      if (inferred_[i] == DataType::kNull) {
        for (const Value& v : cols_[i]) {
          if (!v.is_null()) {
            inferred_[i] = v.type();
            inferred_changed = true;
            break;
          }
        }
      }
    }
    batch->rows.reserve(in_.size());
    for (size_t r = 0; r < in_.size(); ++r) {
      Row projected;
      projected.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        if (col_idx_[i] != SIZE_MAX) {
          projected.push_back((*view[r])[col_idx_[i]]);
        } else {
          projected.push_back(std::move(cols_[i][r]));
        }
      }
      batch->rows.push_back(std::move(projected));
    }
    if (inferred_changed) RebuildSchema();
    return Status::OK();
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  void RebuildSchema() {
    Schema s;
    for (size_t i = 0; i < items_->size(); ++i) {
      const ProjectionItem& item = (*items_)[i];
      s.AddColumn(item.name, item.cast_to != DataType::kNull ? item.cast_to
                                                             : inferred_[i]);
    }
    schema_ = std::move(s);
  }

  CursorPtr child_;
  const std::vector<ProjectionItem>* items_;
  ExecContext* ctx_;
  std::vector<DataType> inferred_;
  Schema schema_;
  Batch in_;
  RowRefs view_scratch_;
  std::vector<std::vector<Value>> cols_;
  std::vector<size_t> col_idx_;  // SIZE_MAX = not a bare column reference
};

/// Build side (right) is drained and hashed at Open; probe side streams.
class HashJoinCursor : public BatchCursor {
 public:
  HashJoinCursor(CursorPtr left, CursorPtr right,
                 const std::vector<std::string>* lkeys,
                 const std::vector<std::string>* rkeys, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(lkeys),
        rkeys_(rkeys),
        ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(left_->Open());
    DIP_ASSIGN_OR_RETURN(build_data_, DrainCursor(right_.get()));
    ctx_->operator_invocations++;
    if (lkeys_->size() != rkeys_->size() || lkeys_->empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    for (const auto& k : *lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, left_->schema().RequireIndexOf(k));
      lidx_.push_back(i);
    }
    for (const auto& k : *rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, build_data_.schema.RequireIndexOf(k));
      ridx_.push_back(i);
    }
    build_.reserve(build_data_.rows.size());
    for (size_t i = 0; i < build_data_.rows.size(); ++i) {
      ctx_->rows_processed++;
      build_.emplace(HashRowKey(build_data_.rows[i], ridx_), i);
    }
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    for (;;) {
      DIP_RETURN_NOT_OK(left_->Next(&in_));
      if (in_.empty()) return Status::OK();
      for (size_t r = 0; r < in_.size(); ++r) {
        const Row& lrow = in_.row(r);
        ctx_->rows_processed++;
        size_t h = HashRowKey(lrow, lidx_);
        auto range = build_.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Row& rrow = build_data_.rows[it->second];
          bool match = true;
          for (size_t k = 0; k < lidx_.size(); ++k) {
            if (lrow[lidx_[k]].Compare(rrow[ridx_[k]]) != 0 ||
                lrow[lidx_[k]].is_null()) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          Row joined = lrow;
          joined.insert(joined.end(), rrow.begin(), rrow.end());
          batch->rows.push_back(std::move(joined));
        }
      }
      if (!batch->rows.empty()) return Status::OK();
    }
  }
  void Close() override { left_->Close(); }
  const Schema& schema() const override {
    // The probe-side schema may still be provisional mid-stream, so the
    // joined schema is rebuilt on demand rather than fixed at Open.
    Schema s = left_->schema();
    for (const auto& col : build_data_.schema.columns()) {
      std::string name = col.name;
      while (s.HasColumn(name)) name = "r_" + name;
      s.AddColumn(name, col.type, col.nullable);
    }
    schema_cache_ = std::move(s);
    return schema_cache_;
  }

 private:
  CursorPtr left_, right_;
  const std::vector<std::string>* lkeys_;
  const std::vector<std::string>* rkeys_;
  ExecContext* ctx_;
  RowSet build_data_;
  std::unordered_multimap<size_t, size_t> build_;
  std::vector<size_t> lidx_, ridx_;
  Batch in_;
  mutable Schema schema_cache_;
};

/// Emits the first `limit` rows but keeps draining its child afterwards so
/// the child's cost counters match the materializing path exactly (LIMIT
/// bounds result size, not accounted work).
class LimitCursor : public BatchCursor {
 public:
  LimitCursor(CursorPtr child, size_t limit, ExecContext* ctx)
      : child_(std::move(child)), limit_(limit), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in_));
      if (in_.empty()) return Status::OK();
      if (emitted_ >= limit_) continue;  // past the limit: drain, emit nothing
      size_t take = std::min(limit_ - emitted_, in_.size());
      if (in_.borrowed()) {
        batch->refs.assign(in_.refs.begin(), in_.refs.begin() + take);
      } else {
        batch->rows.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          batch->rows.push_back(std::move(in_.rows[i]));
        }
      }
      emitted_ += take;
      ctx_->rows_processed += take;
      return Status::OK();
    }
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  size_t limit_;
  ExecContext* ctx_;
  Batch in_;
  size_t emitted_ = 0;
};

class ScanTableNode : public PlanNode {
 public:
  explicit ScanTableNode(const Table* table) : table_(table) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<ScanTableCursor>(table_, ctx);
  }
  std::string ToString() const override {
    return "Scan(" + table_->name() + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    out.rows = table_->ScanAll();
    ctx->rows_processed += out.rows.size();
    return out;
  }

 private:
  const Table* table_;
};

class IndexRangeScanNode : public PlanNode {
 public:
  IndexRangeScanNode(const Table* table, std::string index_name, Value lo,
                     Value hi)
      : table_(table),
        index_name_(std::move(index_name)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}
  std::string ToString() const override {
    return "IndexRangeScan(" + table_->name() + "." + index_name_ + ", [" +
           lo_.ToString() + ", " + hi_.ToString() + "])";
  }

 protected:
  // Blocking in both modes: the ordered index delivers the full range.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    DIP_ASSIGN_OR_RETURN(out.rows, table_->LookupRange(index_name_, lo_, hi_));
    ctx->rows_processed += out.rows.size();
    return out;
  }

 private:
  const Table* table_;
  std::string index_name_;
  Value lo_, hi_;
};

class ScanValuesNode : public PlanNode {
 public:
  explicit ScanValuesNode(RowSet rows) : rows_(std::move(rows)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<RowSliceCursor>(&rows_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("Values(%zu rows)", rows_.rows.size());
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    ctx->rows_processed += rows_.rows.size();
    return rows_;
  }

 private:
  RowSet rows_;
};

class ScanValuesRefNode : public PlanNode {
 public:
  explicit ScanValuesRefNode(const RowSet* rows) : rows_(rows) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<RowSliceCursor>(rows_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("ValuesRef(%zu rows)", rows_->rows.size());
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    ctx->rows_processed += rows_->rows.size();
    return *rows_;
  }

 private:
  const RowSet* rows_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<FilterCursor>(child_->MakeCursor(ctx), predicate_,
                                          ctx);
  }
  std::string ToString() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    out.schema = in.schema;
    for (auto& row : in.rows) {
      ctx->rows_processed++;
      DIP_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(row, in.schema));
      if (!keep.is_null() && keep.type() == DataType::kBool && keep.AsBool()) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ProjectionItem> items)
      : child_(std::move(child)), items_(std::move(items)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<ProjectCursor>(child_->MakeCursor(ctx), &items_,
                                           ctx);
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& i : items_) {
      parts.push_back(i.name + "=" + i.expr->ToString());
    }
    return "Project(" + StrJoin(parts, ", ") + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    for (const auto& item : items_) {
      // Output column type: forced cast target, else inferred lazily below.
      out.schema.AddColumn(item.name, item.cast_to == DataType::kNull
                                          ? DataType::kNull
                                          : item.cast_to);
    }
    out.rows.reserve(in.rows.size());
    std::vector<DataType> inferred(items_.size(), DataType::kNull);
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      Row projected;
      projected.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        DIP_ASSIGN_OR_RETURN(Value v, items_[i].expr->Eval(row, in.schema));
        if (items_[i].cast_to != DataType::kNull) {
          DIP_ASSIGN_OR_RETURN(v, v.CastTo(items_[i].cast_to));
        }
        if (inferred[i] == DataType::kNull && !v.is_null()) {
          inferred[i] = v.type();
        }
        projected.push_back(std::move(v));
      }
      out.rows.push_back(std::move(projected));
    }
    // Fill inferred types into the schema for downstream consumers.
    Schema finalized;
    for (size_t i = 0; i < items_.size(); ++i) {
      DataType t = items_[i].cast_to != DataType::kNull ? items_[i].cast_to
                                                        : inferred[i];
      finalized.AddColumn(items_[i].name, t);
    }
    out.schema = finalized;
    return out;
  }

 private:
  PlanPtr child_;
  std::vector<ProjectionItem> items_;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> lkeys,
               std::vector<std::string> rkeys)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(std::move(lkeys)),
        rkeys_(std::move(rkeys)) {}

  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<HashJoinCursor>(left_->MakeCursor(ctx),
                                            right_->MakeCursor(ctx), &lkeys_,
                                            &rkeys_, ctx);
  }

  std::string ToString() const override {
    return "HashJoin(" + StrJoin(lkeys_, ",") + " = " + StrJoin(rkeys_, ",") +
           ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet l, left_->Execute(ctx));
    DIP_ASSIGN_OR_RETURN(RowSet r, right_->Execute(ctx));
    ctx->operator_invocations++;
    if (lkeys_.size() != rkeys_.size() || lkeys_.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    std::vector<size_t> lidx, ridx;
    for (const auto& k : lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, l.schema.RequireIndexOf(k));
      lidx.push_back(i);
    }
    for (const auto& k : rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, r.schema.RequireIndexOf(k));
      ridx.push_back(i);
    }
    // Build on the right side.
    std::unordered_multimap<size_t, size_t> build;
    build.reserve(r.rows.size());
    for (size_t i = 0; i < r.rows.size(); ++i) {
      ctx->rows_processed++;
      build.emplace(HashRowKey(r.rows[i], ridx), i);
    }
    RowSet out;
    out.schema = l.schema;
    for (const auto& col : r.schema.columns()) {
      std::string name = col.name;
      while (out.schema.HasColumn(name)) name = "r_" + name;
      out.schema.AddColumn(name, col.type, col.nullable);
    }
    for (const auto& lrow : l.rows) {
      ctx->rows_processed++;
      size_t h = HashRowKey(lrow, lidx);
      auto range = build.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        const Row& rrow = r.rows[it->second];
        bool match = true;
        for (size_t k = 0; k < lidx.size(); ++k) {
          if (lrow[lidx[k]].Compare(rrow[ridx[k]]) != 0 ||
              lrow[lidx[k]].is_null()) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Row joined = lrow;
        joined.insert(joined.end(), rrow.begin(), rrow.end());
        out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }

 private:
  PlanPtr left_, right_;
  std::vector<std::string> lkeys_, rkeys_;
};

class UnionDistinctNode : public PlanNode {
 public:
  UnionDistinctNode(std::vector<PlanPtr> children,
                    std::vector<std::string> key_columns)
      : children_(std::move(children)), key_columns_(std::move(key_columns)) {}

  std::string ToString() const override {
    return StrFormat("UnionDistinct(%zu inputs, key=[%s])", children_.size(),
                     StrJoin(key_columns_, ",").c_str());
  }

 protected:
  // Blocking: dedup needs all inputs. Children stream via Execute dispatch.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    if (children_.empty()) {
      return Status::InvalidArgument("UNION of zero inputs");
    }
    std::vector<RowSet> inputs;
    for (const auto& c : children_) {
      DIP_ASSIGN_OR_RETURN(RowSet rs, c->Execute(ctx));
      inputs.push_back(std::move(rs));
    }
    ctx->operator_invocations++;
    RowSet out;
    out.schema = inputs[0].schema;
    std::vector<size_t> key_idx;
    if (key_columns_.empty()) {
      for (size_t i = 0; i < out.schema.num_columns(); ++i) {
        key_idx.push_back(i);
      }
    } else {
      for (const auto& k : key_columns_) {
        DIP_ASSIGN_OR_RETURN(size_t i, out.schema.RequireIndexOf(k));
        key_idx.push_back(i);
      }
    }
    // Hash set over key projections with collision verification.
    std::unordered_multimap<size_t, size_t> seen;  // hash -> out row index
    for (auto& input : inputs) {
      if (input.schema.num_columns() != out.schema.num_columns()) {
        return Status::TypeMismatch("UNION input arity mismatch");
      }
      for (auto& row : input.rows) {
        ctx->rows_processed++;
        size_t h = HashRowKey(row, key_idx);
        bool duplicate = false;
        auto range = seen.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Row& prev = out.rows[it->second];
          bool equal = true;
          for (size_t k : key_idx) {
            if (prev[k].Compare(row[k]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          seen.emplace(h, out.rows.size());
          out.rows.push_back(std::move(row));
        }
      }
    }
    return out;
  }

 private:
  std::vector<PlanPtr> children_;
  std::vector<std::string> key_columns_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggregateItem> aggs)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  std::string ToString() const override {
    return StrFormat("Aggregate(group=[%s], %zu aggs)",
                     StrJoin(group_by_, ",").c_str(), aggs_.size());
  }

 protected:
  // Blocking: groups close only at end of input. Child streams via Execute.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    std::vector<size_t> group_idx;
    for (const auto& g : group_by_) {
      DIP_ASSIGN_OR_RETURN(size_t i, in.schema.RequireIndexOf(g));
      group_idx.push_back(i);
    }
    std::vector<size_t> agg_idx(aggs_.size(), SIZE_MAX);
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (!aggs_[i].input_column.empty()) {
        DIP_ASSIGN_OR_RETURN(size_t idx,
                             in.schema.RequireIndexOf(aggs_[i].input_column));
        agg_idx[i] = idx;
      } else if (aggs_[i].func != AggFunc::kCount) {
        return Status::InvalidArgument("aggregate needs an input column");
      }
    }

    struct GroupState {
      Row key;
      std::vector<double> sum;
      std::vector<int64_t> count;
      std::vector<Value> min_v, max_v;
      std::vector<bool> all_int;
    };
    // Keyed by serialized group key for deterministic iteration below.
    std::map<std::string, GroupState> groups;
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      Row key;
      for (size_t gi : group_idx) key.push_back(row[gi]);
      std::string key_str = RowToString(key);
      auto [it, inserted] = groups.try_emplace(key_str);
      GroupState& st = it->second;
      if (inserted) {
        st.key = key;
        st.sum.assign(aggs_.size(), 0.0);
        st.count.assign(aggs_.size(), 0);
        st.min_v.assign(aggs_.size(), Value::Null());
        st.max_v.assign(aggs_.size(), Value::Null());
        st.all_int.assign(aggs_.size(), true);
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const Value* v = agg_idx[a] == SIZE_MAX ? nullptr : &row[agg_idx[a]];
        if (aggs_[a].func == AggFunc::kCount) {
          if (v == nullptr || !v->is_null()) st.count[a]++;
          continue;
        }
        if (v == nullptr || v->is_null()) continue;
        DIP_ASSIGN_OR_RETURN(double num, v->ToNumeric());
        st.sum[a] += num;
        st.count[a]++;
        if (v->type() != DataType::kInt64) st.all_int[a] = false;
        if (st.min_v[a].is_null() || v->Compare(st.min_v[a]) < 0) {
          st.min_v[a] = *v;
        }
        if (st.max_v[a].is_null() || v->Compare(st.max_v[a]) > 0) {
          st.max_v[a] = *v;
        }
      }
    }

    RowSet out;
    for (size_t g = 0; g < group_by_.size(); ++g) {
      const Column& c = in.schema.column(group_idx[g]);
      out.schema.AddColumn(group_by_[g], c.type, c.nullable);
    }
    for (const auto& a : aggs_) {
      DataType t = a.func == AggFunc::kCount ? DataType::kInt64
                   : a.func == AggFunc::kAvg ? DataType::kDouble
                                             : DataType::kNull;
      out.schema.AddColumn(a.output_name, t);
    }
    for (const auto& [key_str, st] : groups) {
      Row row = st.key;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        switch (aggs_[a].func) {
          case AggFunc::kCount:
            row.push_back(Value::Int(st.count[a]));
            break;
          case AggFunc::kSum:
            row.push_back(st.count[a] == 0 ? Value::Null()
                          : st.all_int[a]
                              ? Value::Int(static_cast<int64_t>(st.sum[a]))
                              : Value::Double(st.sum[a]));
            break;
          case AggFunc::kAvg:
            row.push_back(st.count[a] == 0
                              ? Value::Null()
                              : Value::Double(st.sum[a] / st.count[a]));
            break;
          case AggFunc::kMin:
            row.push_back(st.min_v[a]);
            break;
          case AggFunc::kMax:
            row.push_back(st.max_v[a]);
            break;
        }
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

 private:
  PlanPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggregateItem> aggs_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& k : keys_) {
      parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
    }
    return "Sort(" + StrJoin(parts, ", ") + ")";
  }

 protected:
  // Blocking: order is only known once all input has arrived.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    ctx->rows_processed += in.rows.size();
    std::vector<size_t> idx;
    std::vector<bool> asc;
    for (const auto& k : keys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, in.schema.RequireIndexOf(k.column));
      idx.push_back(i);
      asc.push_back(k.ascending);
    }
    std::stable_sort(in.rows.begin(), in.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < idx.size(); ++k) {
                         int c = a[idx[k]].Compare(b[idx[k]]);
                         if (c != 0) return asc[k] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    return in;
  }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<LimitCursor>(child_->MakeCursor(ctx), limit_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("Limit(%zu)", limit_);
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    if (in.rows.size() > limit_) in.rows.resize(limit_);
    ctx->rows_processed += in.rows.size();
    return in;
  }

 private:
  PlanPtr child_;
  size_t limit_;
};

}  // namespace

PlanPtr ScanTable(const Table* table) {
  return std::make_shared<ScanTableNode>(table);
}
PlanPtr IndexRangeScan(const Table* table, std::string index_name, Value lo,
                       Value hi) {
  return std::make_shared<IndexRangeScanNode>(table, std::move(index_name),
                                              std::move(lo), std::move(hi));
}
PlanPtr ScanValues(RowSet rows) {
  return std::make_shared<ScanValuesNode>(std::move(rows));
}
PlanPtr ScanValuesRef(const RowSet* rows) {
  return std::make_shared<ScanValuesRefNode>(rows);
}
PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(child), std::move(predicate));
}
PlanPtr Project(PlanPtr child, std::vector<ProjectionItem> items) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(items));
}
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys));
}
PlanPtr UnionDistinct(std::vector<PlanPtr> children,
                      std::vector<std::string> key_columns) {
  return std::make_shared<UnionDistinctNode>(std::move(children),
                                             std::move(key_columns));
}
PlanPtr Distinct(PlanPtr child) {
  std::vector<PlanPtr> children{std::move(child)};
  return UnionDistinct(std::move(children), {});
}
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates) {
  return std::make_shared<AggregateNode>(std::move(child), std::move(group_by),
                                         std::move(aggregates));
}
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}
PlanPtr Limit(PlanPtr child, size_t limit) {
  return std::make_shared<LimitNode>(std::move(child), limit);
}

Result<size_t> InsertInto(Table* table, const RowSet& rows) {
  size_t inserted = 0;
  for (const auto& row : rows.rows) {
    Status st = table->Insert(row);
    if (st.ok()) {
      ++inserted;
    } else if (st.code() != StatusCode::kAlreadyExists) {
      return st;
    }
  }
  return inserted;
}

Result<size_t> UpsertInto(Table* table, const RowSet& rows) {
  size_t written = 0;
  for (const auto& row : rows.rows) {
    DIP_RETURN_NOT_OK(table->InsertOrReplace(row));
    ++written;
  }
  return written;
}

}  // namespace dipbench
