#include "src/ra/plan.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/string_util.h"
#include "src/storage/spill.h"

namespace dipbench {

size_t RowSet::ByteSize() const {
  // Memoized per row count: operators never mutate values in place at
  // constant cardinality, so a matching count means an unchanged payload.
  if (byte_size_cache_rows_ == rows.size()) return byte_size_cache_;
  size_t total = 0;
  for (const auto& r : rows) {
    for (const auto& v : r) total += v.ByteSize();
  }
  byte_size_cache_ = total;
  byte_size_cache_rows_ = rows.size();
  return total;
}

namespace {
// Engine-wide execution mode. The engine is a single-threaded discrete-event
// simulation, so a plain global suffices.
thread_local ExecMode g_exec_mode = ExecMode::kPipeline;
}  // namespace

ExecMode CurrentExecMode() { return g_exec_mode; }
void SetExecMode(ExecMode mode) { g_exec_mode = mode; }

Result<RowSet> DrainCursor(BatchCursor* cursor) {
  DIP_RETURN_NOT_OK(cursor->Open());
  RowSet out;
  Batch batch;
  for (;;) {
    DIP_RETURN_NOT_OK(cursor->Next(&batch));
    if (batch.empty()) break;
    // No per-batch reserve: exact-sized reserves would defeat the vector's
    // geometric growth and reallocate once per batch. Borrowed batches are
    // copied (their pointees die with the next Next()); owned ones move.
    if (batch.borrowed()) {
      for (const Row* row : batch.refs) out.rows.push_back(*row);
    } else {
      for (Row& row : batch.rows) out.rows.push_back(std::move(row));
    }
  }
  // Read the schema only after end of stream: type-inferring operators
  // (Project) finalize it as the last rows pass through.
  out.schema = cursor->schema();
  cursor->Close();
  return out;
}

namespace {

/// Adapter that materializes a full RowSet at Open() and then emits it in
/// batches. Serves as the default cursor for blocking operators; their
/// children still stream because the producer runs them through the
/// mode-dispatching PlanNode::Execute().
class RowSetCursor : public BatchCursor {
 public:
  explicit RowSetCursor(std::function<Result<RowSet>()> producer)
      : producer_(std::move(producer)) {}

  Status Open() override {
    DIP_ASSIGN_OR_RETURN(data_, producer_());
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, data_.rows.size() - pos_);
    batch->rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch->rows.push_back(std::move(data_.rows[pos_ + i]));
    }
    pos_ += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return data_.schema; }

 private:
  std::function<Result<RowSet>()> producer_;
  RowSet data_;
  size_t pos_ = 0;
};

}  // namespace

Result<RowSet> PlanNode::Execute(ExecContext* ctx) const {
  if (CurrentExecMode() == ExecMode::kMaterialize) {
    return ExecuteMaterialized(ctx);
  }
  CursorPtr cursor = MakeCursor(ctx);
  return DrainCursor(cursor.get());
}

CursorPtr PlanNode::MakeCursor(ExecContext* ctx) const {
  return std::make_unique<RowSetCursor>(
      [this, ctx] { return ExecuteMaterialized(ctx); });
}

ColumnarCursorPtr PlanNode::MakeColumnarCursor(ExecContext*) const {
  return nullptr;
}

namespace {

/// Read-only view of a batch for vectorized evaluation: borrowed batches
/// already are pointer vectors; owned ones get one built in `scratch`.
const RowRefs& BatchView(const Batch& in, RowRefs* scratch) {
  if (in.borrowed() || in.rows.empty()) return in.refs;
  scratch->clear();
  scratch->reserve(in.rows.size());
  for (const Row& row : in.rows) scratch->push_back(&row);
  return *scratch;
}

/// Streams a table's live rows through Table::ScanCursor as borrowed
/// pointers — neither an up-front full copy nor per-batch row copies.
class ScanTableCursor : public BatchCursor {
 public:
  ScanTableCursor(const Table* table, ExecContext* ctx)
      : table_(table), ctx_(ctx), cursor_(table->Scan()) {}

  Status Open() override {
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = cursor_.NextBatchRefs(&batch->refs, kBatchCapacity);
    ctx_->rows_processed += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  ExecContext* ctx_;
  Table::ScanCursor cursor_;
};

/// Streams an in-memory RowSet it does not own, one chunk at a time.
class RowSliceCursor : public BatchCursor {
 public:
  RowSliceCursor(const RowSet* data, ExecContext* ctx)
      : data_(data), ctx_(ctx) {}

  Status Open() override {
    ctx_->operator_invocations++;
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, data_->rows.size() - pos_);
    batch->refs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch->refs.push_back(&data_->rows[pos_ + i]);
    }
    pos_ += n;
    ctx_->rows_processed += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return data_->schema; }

 private:
  const RowSet* data_;
  ExecContext* ctx_;
  size_t pos_ = 0;
};

class FilterCursor : public BatchCursor {
 public:
  FilterCursor(CursorPtr child, ExprPtr predicate, ExecContext* ctx)
      : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    // Pull until some rows survive the predicate or the child is exhausted:
    // an empty batch must mean end of stream.
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in_));
      if (in_.empty()) return Status::OK();
      ctx_->rows_processed += in_.size();
      const RowRefs& view = BatchView(in_, &view_scratch_);
      DIP_RETURN_NOT_OK(predicate_->EvalBatch(view, child_->schema(), &keep_));
      // Dropped rows are never copied: borrowed inputs forward the kept
      // pointers; owned inputs move the kept rows out.
      for (size_t i = 0; i < in_.size(); ++i) {
        const Value& k = keep_[i];
        if (!k.is_null() && k.type() == DataType::kBool && k.AsBool()) {
          if (in_.borrowed()) {
            batch->refs.push_back(in_.refs[i]);
          } else {
            batch->rows.push_back(std::move(in_.rows[i]));
          }
        }
      }
      if (!batch->empty()) return Status::OK();
    }
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_;
  Batch in_;
  RowRefs view_scratch_;
  std::vector<Value> keep_;
};

class ProjectCursor : public BatchCursor {
 public:
  ProjectCursor(CursorPtr child, const std::vector<ProjectionItem>* items,
                ExecContext* ctx)
      : child_(std::move(child)),
        items_(items),
        ctx_(ctx),
        inferred_(items->size(), DataType::kNull) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    RebuildSchema();
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    DIP_RETURN_NOT_OK(child_->Next(&in_));
    if (in_.empty()) return Status::OK();
    ctx_->rows_processed += in_.size();
    const Schema& in_schema = child_->schema();
    const auto& items = *items_;
    const RowRefs& view = BatchView(in_, &view_scratch_);
    // Column-at-a-time: one EvalBatch per projection item per batch. Bare
    // uncast column references skip the value buffer entirely — the index is
    // resolved once per batch and values are copied straight from the input
    // rows in the row-build loop below.
    cols_.resize(items.size());
    col_idx_.assign(items.size(), SIZE_MAX);
    bool inferred_changed = false;
    for (size_t i = 0; i < items.size(); ++i) {
      const std::string* col = items[i].cast_to == DataType::kNull
                                   ? ColumnRefName(*items[i].expr)
                                   : nullptr;
      if (col != nullptr) {
        DIP_ASSIGN_OR_RETURN(size_t idx, in_schema.RequireIndexOf(*col));
        for (const Row* row : view) {
          if (idx >= row->size()) {
            return Status::Internal("row narrower than schema");
          }
        }
        col_idx_[i] = idx;
        if (inferred_[i] == DataType::kNull) {
          for (const Row* row : view) {
            if (!(*row)[idx].is_null()) {
              inferred_[i] = (*row)[idx].type();
              inferred_changed = true;
              break;
            }
          }
        }
        continue;
      }
      DIP_RETURN_NOT_OK(items[i].expr->EvalBatch(view, in_schema, &cols_[i]));
      if (items[i].cast_to != DataType::kNull) {
        for (Value& v : cols_[i]) {
          DIP_ASSIGN_OR_RETURN(v, v.CastTo(items[i].cast_to));
        }
      }
      if (inferred_[i] == DataType::kNull) {
        for (const Value& v : cols_[i]) {
          if (!v.is_null()) {
            inferred_[i] = v.type();
            inferred_changed = true;
            break;
          }
        }
      }
    }
    batch->rows.reserve(in_.size());
    for (size_t r = 0; r < in_.size(); ++r) {
      Row projected;
      projected.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        if (col_idx_[i] != SIZE_MAX) {
          projected.push_back((*view[r])[col_idx_[i]]);
        } else {
          projected.push_back(std::move(cols_[i][r]));
        }
      }
      batch->rows.push_back(std::move(projected));
    }
    if (inferred_changed) RebuildSchema();
    return Status::OK();
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  void RebuildSchema() {
    Schema s;
    for (size_t i = 0; i < items_->size(); ++i) {
      const ProjectionItem& item = (*items_)[i];
      s.AddColumn(item.name, item.cast_to != DataType::kNull ? item.cast_to
                                                             : inferred_[i]);
    }
    schema_ = std::move(s);
  }

  CursorPtr child_;
  const std::vector<ProjectionItem>* items_;
  ExecContext* ctx_;
  std::vector<DataType> inferred_;
  Schema schema_;
  Batch in_;
  RowRefs view_scratch_;
  std::vector<std::vector<Value>> cols_;
  std::vector<size_t> col_idx_;  // SIZE_MAX = not a bare column reference
};

/// Build side (right) is drained and hashed at Open; probe side streams.
class HashJoinCursor : public BatchCursor {
 public:
  HashJoinCursor(CursorPtr left, CursorPtr right,
                 const std::vector<std::string>* lkeys,
                 const std::vector<std::string>* rkeys, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(lkeys),
        rkeys_(rkeys),
        ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(left_->Open());
    DIP_ASSIGN_OR_RETURN(build_data_, DrainCursor(right_.get()));
    ctx_->operator_invocations++;
    if (lkeys_->size() != rkeys_->size() || lkeys_->empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    for (const auto& k : *lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, left_->schema().RequireIndexOf(k));
      lidx_.push_back(i);
    }
    for (const auto& k : *rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, build_data_.schema.RequireIndexOf(k));
      ridx_.push_back(i);
    }
    build_.reserve(build_data_.rows.size());
    for (size_t i = 0; i < build_data_.rows.size(); ++i) {
      ctx_->rows_processed++;
      build_.emplace(HashRowKey(build_data_.rows[i], ridx_), i);
    }
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    for (;;) {
      DIP_RETURN_NOT_OK(left_->Next(&in_));
      if (in_.empty()) return Status::OK();
      for (size_t r = 0; r < in_.size(); ++r) {
        const Row& lrow = in_.row(r);
        ctx_->rows_processed++;
        size_t h = HashRowKey(lrow, lidx_);
        auto range = build_.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Row& rrow = build_data_.rows[it->second];
          bool match = true;
          for (size_t k = 0; k < lidx_.size(); ++k) {
            if (lrow[lidx_[k]].Compare(rrow[ridx_[k]]) != 0 ||
                lrow[lidx_[k]].is_null()) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          Row joined = lrow;
          joined.insert(joined.end(), rrow.begin(), rrow.end());
          batch->rows.push_back(std::move(joined));
        }
      }
      if (!batch->rows.empty()) return Status::OK();
    }
  }
  void Close() override { left_->Close(); }
  const Schema& schema() const override {
    // The probe-side schema may still be provisional mid-stream, so the
    // joined schema is rebuilt on demand rather than fixed at Open.
    Schema s = left_->schema();
    for (const auto& col : build_data_.schema.columns()) {
      std::string name = col.name;
      while (s.HasColumn(name)) name = "r_" + name;
      s.AddColumn(name, col.type, col.nullable);
    }
    schema_cache_ = std::move(s);
    return schema_cache_;
  }

 private:
  CursorPtr left_, right_;
  const std::vector<std::string>* lkeys_;
  const std::vector<std::string>* rkeys_;
  ExecContext* ctx_;
  RowSet build_data_;
  std::unordered_multimap<size_t, size_t> build_;
  std::vector<size_t> lidx_, ridx_;
  Batch in_;
  mutable Schema schema_cache_;
};

/// Emits the first `limit` rows and then SHORT-CIRCUITS: the moment the
/// limit is reached the child is closed and nothing more is pulled, so
/// upstream work (rows_read, rows_processed) is bounded by
/// O(limit + batch size) rather than the full input. This intentionally
/// diverges from the materializing path, which computes the child in full
/// by construction (SPECIFICATION.md §14.4 documents the counter
/// difference).
class LimitCursor : public BatchCursor {
 public:
  LimitCursor(CursorPtr child, size_t limit, ExecContext* ctx)
      : child_(std::move(child)), limit_(limit), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    if (emitted_ >= limit_) {
      CloseChild();
      return Status::OK();
    }
    DIP_RETURN_NOT_OK(child_->Next(&in_));
    if (in_.empty()) return Status::OK();
    size_t take = std::min(limit_ - emitted_, in_.size());
    if (in_.borrowed()) {
      // Borrowed pointees live in table / RowSet storage, which outlives the
      // eager CloseChild() below — forwarding them stays safe.
      batch->refs.assign(in_.refs.begin(), in_.refs.begin() + take);
    } else {
      batch->rows.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch->rows.push_back(std::move(in_.rows[i]));
      }
    }
    emitted_ += take;
    ctx_->rows_processed += take;
    if (emitted_ >= limit_) CloseChild();  // stop upstream work eagerly
    return Status::OK();
  }
  void Close() override { CloseChild(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  CursorPtr child_;
  size_t limit_;
  ExecContext* ctx_;
  Batch in_;
  size_t emitted_ = 0;
  bool child_closed_ = false;
};

/// --- Shared grouped-aggregation core ------------------------------------
///
/// Every aggregation path (materialized, columnar, spilling) funnels
/// through these helpers so group semantics, double-summation order, and
/// output shape can never drift apart across execution modes.

struct AggGroupState {
  Row key;
  std::vector<double> sum;
  std::vector<int64_t> count;
  std::vector<Value> min_v, max_v;
  std::vector<bool> all_int;
  // Numeric mirrors of min_v/max_v for the columnar fast path (Value::
  // Compare on the numeric family is double comparison); the row paths
  // leave them untouched.
  std::vector<double> min_num, max_num;
};

void InitAggState(AggGroupState* st, Row key, size_t naggs) {
  st->key = std::move(key);
  st->sum.assign(naggs, 0.0);
  st->count.assign(naggs, 0);
  st->min_v.assign(naggs, Value::Null());
  st->max_v.assign(naggs, Value::Null());
  st->all_int.assign(naggs, true);
  st->min_num.assign(naggs, 0.0);
  st->max_num.assign(naggs, 0.0);
}

Status ResolveAggIndexes(const Schema& schema,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggregateItem>& aggs,
                         std::vector<size_t>* group_idx,
                         std::vector<size_t>* agg_idx) {
  for (const auto& g : group_by) {
    DIP_ASSIGN_OR_RETURN(size_t i, schema.RequireIndexOf(g));
    group_idx->push_back(i);
  }
  agg_idx->assign(aggs.size(), SIZE_MAX);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (!aggs[i].input_column.empty()) {
      DIP_ASSIGN_OR_RETURN(size_t idx,
                           schema.RequireIndexOf(aggs[i].input_column));
      (*agg_idx)[i] = idx;
    } else if (aggs[i].func != AggFunc::kCount) {
      return Status::InvalidArgument("aggregate needs an input column");
    }
  }
  return Status::OK();
}

Status AccumulateAggValues(const Row& row,
                           const std::vector<AggregateItem>& aggs,
                           const std::vector<size_t>& agg_idx,
                           AggGroupState* st) {
  for (size_t a = 0; a < aggs.size(); ++a) {
    const Value* v = agg_idx[a] == SIZE_MAX ? nullptr : &row[agg_idx[a]];
    if (aggs[a].func == AggFunc::kCount) {
      if (v == nullptr || !v->is_null()) st->count[a]++;
      continue;
    }
    if (v == nullptr || v->is_null()) continue;
    DIP_ASSIGN_OR_RETURN(double num, v->ToNumeric());
    st->sum[a] += num;
    st->count[a]++;
    if (v->type() != DataType::kInt64) st->all_int[a] = false;
    if (st->min_v[a].is_null() || v->Compare(st->min_v[a]) < 0) {
      st->min_v[a] = *v;
    }
    if (st->max_v[a].is_null() || v->Compare(st->max_v[a]) > 0) {
      st->max_v[a] = *v;
    }
  }
  return Status::OK();
}

Status AccumulateAggRow(const Row& row, const std::vector<AggregateItem>& aggs,
                        const std::vector<size_t>& group_idx,
                        const std::vector<size_t>& agg_idx,
                        std::map<std::string, AggGroupState>* groups) {
  Row key;
  for (size_t gi : group_idx) key.push_back(row[gi]);
  std::string key_str = RowToString(key);
  auto [it, inserted] = groups->try_emplace(std::move(key_str));
  if (inserted) InitAggState(&it->second, std::move(key), aggs.size());
  return AccumulateAggValues(row, aggs, agg_idx, &it->second);
}

Row FinalizeAggGroup(const AggGroupState& st,
                     const std::vector<AggregateItem>& aggs) {
  Row row = st.key;
  for (size_t a = 0; a < aggs.size(); ++a) {
    switch (aggs[a].func) {
      case AggFunc::kCount:
        row.push_back(Value::Int(st.count[a]));
        break;
      case AggFunc::kSum:
        row.push_back(st.count[a] == 0 ? Value::Null()
                      : st.all_int[a]
                          ? Value::Int(static_cast<int64_t>(st.sum[a]))
                          : Value::Double(st.sum[a]));
        break;
      case AggFunc::kAvg:
        row.push_back(st.count[a] == 0
                          ? Value::Null()
                          : Value::Double(st.sum[a] / st.count[a]));
        break;
      case AggFunc::kMin:
        row.push_back(st.min_v[a]);
        break;
      case AggFunc::kMax:
        row.push_back(st.max_v[a]);
        break;
    }
  }
  return row;
}

Schema AggOutputSchema(const Schema& in_schema,
                       const std::vector<std::string>& group_by,
                       const std::vector<size_t>& group_idx,
                       const std::vector<AggregateItem>& aggs) {
  Schema out;
  for (size_t g = 0; g < group_by.size(); ++g) {
    const Column& c = in_schema.column(group_idx[g]);
    out.AddColumn(group_by[g], c.type, c.nullable);
  }
  for (const auto& a : aggs) {
    DataType t = a.func == AggFunc::kCount ? DataType::kInt64
                 : a.func == AggFunc::kAvg ? DataType::kDouble
                                           : DataType::kNull;
    out.AddColumn(a.output_name, t);
  }
  return out;
}

/// --- Spill helpers -------------------------------------------------------

/// Approximate in-memory footprint of a buffered row (payload + per-value
/// and per-row bookkeeping overhead) for budget accounting.
size_t ApproxRowBytes(const Row& row) {
  size_t total = 24;
  for (const Value& v : row) total += v.ByteSize() + 16;
  return total;
}

/// Number of disk partitions for hash-partitioned spilling (single level).
constexpr size_t kSpillPartitions = 16;

/// FNV-1a over a serialized key: partitions grouped-aggregation input so
/// that rows with equal serialized keys always share a partition.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string RunName(const char* prefix, size_t i) {
  return std::string(prefix) + std::to_string(i);
}

/// Heap entry for sequence-ordered run merges (spilled union / join): pop
/// ascending sequence. Sequences are globally unique, so ties can't occur.
struct SeqEntry {
  uint64_t seq = 0;
  Row row;
  size_t run = 0;
};
struct SeqHeapCmp {
  bool operator()(const SeqEntry& a, const SeqEntry& b) const {
    return a.seq > b.seq;  // smallest sequence pops first
  }
};

/// Heap entry for key-ordered run merges (spilled aggregation): pop
/// ascending serialized key (keys are disjoint across partitions).
struct KeyEntry {
  std::string key;
  Row row;
  size_t run = 0;
};
struct KeyHeapCmp {
  bool operator()(const KeyEntry& a, const KeyEntry& b) const {
    int c = a.key.compare(b.key);
    if (c != 0) return c > 0;  // smallest key pops first
    return a.run > b.run;
  }
};

/// --- Columnar cursors ----------------------------------------------------

/// Row/column boundary shim: adapts a columnar chain to the row BatchCursor
/// protocol. Charges nothing itself — the columnar cursors below account
/// rows exactly like their row counterparts.
class ColumnShimCursor : public BatchCursor {
 public:
  explicit ColumnShimCursor(ColumnarCursorPtr inner)
      : inner_(std::move(inner)) {}

  Status Open() override { return inner_->Open(); }
  Status Next(Batch* batch) override {
    batch->clear();
    DIP_RETURN_NOT_OK(inner_->Next(&cb_));
    if (cb_.empty()) return Status::OK();
    AppendColumnRows(cb_, &batch->rows);
    return Status::OK();
  }
  void Close() override { inner_->Close(); }
  const Schema& schema() const override { return inner_->schema(); }

 private:
  ColumnarCursorPtr inner_;
  ColumnBatch cb_;
};

/// In kColumnar mode, wraps the node's columnar chain in a row shim;
/// nullptr when the node (or the current mode) has no columnar path, in
/// which case the caller builds its row cursor as usual.
CursorPtr TryColumnarShim(const PlanNode& node, ExecContext* ctx) {
  if (CurrentExecMode() != ExecMode::kColumnar) return nullptr;
  ColumnarCursorPtr inner = node.MakeColumnarCursor(ctx);
  if (inner == nullptr) return nullptr;
  return std::make_unique<ColumnShimCursor>(std::move(inner));
}

/// Streams a table's columnar snapshot in contiguous windows. Read
/// accounting matches the row scan: one rows_read per delivered row
/// (snapshot construction itself charges nothing).
class ColumnarScanCursor : public ColumnarCursor {
 public:
  ColumnarScanCursor(const Table* table, ExecContext* ctx)
      : table_(table), ctx_(ctx) {}

  Status Open() override {
    ctx_->operator_invocations++;
    frame_ = table_->ColumnarSnapshot();
    pos_ = 0;
    return Status::OK();
  }
  Status Next(ColumnBatch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, frame_->num_rows - pos_);
    if (n == 0) return Status::OK();
    batch->columns.assign(frame_->columns.begin(), frame_->columns.end());
    batch->offset = pos_;
    batch->length = n;
    pos_ += n;
    table_->ChargeRead(n);
    ctx_->rows_processed += n;
    return Status::OK();
  }
  void Close() override {}
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  ExecContext* ctx_;
  std::shared_ptr<const ColumnFrame> frame_;
  size_t pos_ = 0;
};

/// Columnar filter: narrows the selection vector via Expr::EvalSelection
/// without touching a cell. Counter-identical to FilterCursor.
class ColumnarFilterCursor : public ColumnarCursor {
 public:
  ColumnarFilterCursor(ColumnarCursorPtr child, ExprPtr predicate,
                       ExecContext* ctx)
      : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    return Status::OK();
  }
  Status Next(ColumnBatch* batch) override {
    batch->clear();
    // Pull until some rows survive: an empty batch must mean end of stream.
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in_));
      if (in_.empty()) return Status::OK();
      ctx_->rows_processed += in_.size();
      sel_.clear();
      DIP_RETURN_NOT_OK(
          predicate_->EvalSelection(in_, child_->schema(), &sel_));
      if (sel_.empty()) continue;
      batch->columns = in_.columns;
      batch->offset = in_.offset;
      batch->length = in_.length;
      batch->has_sel = true;
      batch->sel = std::move(sel_);
      return Status::OK();
    }
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  ColumnarCursorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_;
  ColumnBatch in_;
  std::vector<uint32_t> sel_;
};

/// Columnar projection for bare uncast column references (the node checks
/// before constructing): output batches alias the input columns, remapped —
/// zero copies. Type inference mirrors ProjectCursor: an output column's
/// type is the type of the first non-null value that flows past.
class ColumnarProjectCursor : public ColumnarCursor {
 public:
  ColumnarProjectCursor(ColumnarCursorPtr child,
                        const std::vector<ProjectionItem>* items,
                        ExecContext* ctx)
      : child_(std::move(child)),
        items_(items),
        ctx_(ctx),
        inferred_(items->size(), DataType::kNull) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    ctx_->operator_invocations++;
    idx_.clear();
    for (const auto& item : *items_) {
      const std::string* name = ColumnRefName(*item.expr);
      if (name == nullptr) {
        return Status::Internal("non-column projection in columnar cursor");
      }
      DIP_ASSIGN_OR_RETURN(size_t i, child_->schema().RequireIndexOf(*name));
      idx_.push_back(i);
    }
    RebuildSchema();
    return Status::OK();
  }
  Status Next(ColumnBatch* batch) override {
    batch->clear();
    DIP_RETURN_NOT_OK(child_->Next(&in_));
    if (in_.empty()) return Status::OK();
    ctx_->rows_processed += in_.size();
    bool inferred_changed = false;
    batch->columns.reserve(idx_.size());
    for (size_t i = 0; i < idx_.size(); ++i) {
      if (idx_[i] >= in_.columns.size()) {
        return Status::Internal("batch narrower than schema");
      }
      batch->columns.push_back(in_.columns[idx_[i]]);
      if (inferred_[i] == DataType::kNull) {
        const ColumnVector& col = *in_.columns[idx_[i]];
        for (size_t r = 0; r < in_.size(); ++r) {
          uint32_t p = in_.phys(r);
          if (col.IsNull(p)) continue;
          inferred_[i] = col.rep() == ColumnVector::Rep::kValue
                             ? col.GetValue(p).type()
                             : col.value_type();
          inferred_changed = true;
          break;
        }
      }
    }
    batch->offset = in_.offset;
    batch->length = in_.length;
    batch->has_sel = in_.has_sel;
    batch->sel = in_.sel;
    if (inferred_changed) RebuildSchema();
    return Status::OK();
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  void RebuildSchema() {
    Schema s;
    for (size_t i = 0; i < items_->size(); ++i) {
      s.AddColumn((*items_)[i].name, inferred_[i]);
    }
    schema_ = std::move(s);
  }

  ColumnarCursorPtr child_;
  const std::vector<ProjectionItem>* items_;
  ExecContext* ctx_;
  std::vector<DataType> inferred_;
  std::vector<size_t> idx_;
  Schema schema_;
  ColumnBatch in_;
};

/// Numeric view of a typed column cell (kInt/kDouble reps only).
double ColNum(const ColumnVector& c, uint32_t p) {
  return c.rep() == ColumnVector::Rep::kInt ? static_cast<double>(c.ints()[p])
                                            : c.doubles()[p];
}

/// Blocking columnar aggregation (kColumnar mode, unlimited budget).
/// Consumes a columnar child; group columns that are uniformly int-family
/// without nulls use raw 8-byte key concatenation into an unordered_map.
/// When a batch violates that shape (strings, nulls, mixed types), every
/// accumulated group migrates to the row path's std::map<serialized key,
/// state> and accumulation continues row at a time. Output rows, schema,
/// order (serialized-key lexicographic), and per-group double-summation
/// order are identical to the row implementation.
class ColumnarAggregateCursor : public BatchCursor {
 public:
  ColumnarAggregateCursor(ColumnarCursorPtr child,
                          const std::vector<std::string>* group_by,
                          const std::vector<AggregateItem>* aggs,
                          ExecContext* ctx)
      : child_(std::move(child)), group_by_(group_by), aggs_(aggs), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    DIP_RETURN_NOT_OK(ResolveAggIndexes(child_->schema(), *group_by_, *aggs_,
                                        &group_idx_, &agg_idx_));
    ColumnBatch in;
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in));
      if (in.empty()) break;
      ctx_->rows_processed += in.size();
      if (fast_ && !FastEligible(in)) MigrateToSlow();
      if (fast_) {
        AccumulateFast(in);
      } else {
        for (size_t r = 0; r < in.size(); ++r) {
          Row row = MaterializeColumnRow(in, r);
          DIP_RETURN_NOT_OK(
              AccumulateAggRow(row, *aggs_, group_idx_, agg_idx_, &slow_groups_));
        }
      }
    }
    ctx_->operator_invocations++;
    out_schema_ = AggOutputSchema(child_->schema(), *group_by_, group_idx_,
                                  *aggs_);
    if (fast_) {
      std::vector<std::pair<std::string, const AggGroupState*>> ordered;
      ordered.reserve(fast_groups_.size());
      for (const auto& st : fast_groups_) {
        ordered.emplace_back(RowToString(st.key), &st);
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [key_str, st] : ordered) {
        out_rows_.push_back(FinalizeAggGroup(*st, *aggs_));
      }
    } else {
      for (const auto& [key_str, st] : slow_groups_) {
        out_rows_.push_back(FinalizeAggGroup(st, *aggs_));
      }
    }
    CloseChild();
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    size_t n = std::min(kBatchCapacity, out_rows_.size() - pos_);
    batch->rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch->rows.push_back(std::move(out_rows_[pos_ + i]));
    }
    pos_ += n;
    return Status::OK();
  }
  void Close() override { CloseChild(); }
  const Schema& schema() const override { return out_schema_; }

 private:
  bool FastEligible(const ColumnBatch& in) const {
    for (size_t gi : group_idx_) {
      if (gi >= in.columns.size()) return false;
      const ColumnVector& c = *in.columns[gi];
      if (c.rep() != ColumnVector::Rep::kInt || c.has_nulls()) return false;
    }
    for (size_t a = 0; a < aggs_->size(); ++a) {
      if (agg_idx_[a] == SIZE_MAX) continue;
      if (agg_idx_[a] >= in.columns.size()) return false;
      if ((*aggs_)[a].func == AggFunc::kCount) continue;  // only needs IsNull
      ColumnVector::Rep r = in.columns[agg_idx_[a]]->rep();
      if (r != ColumnVector::Rep::kInt && r != ColumnVector::Rep::kDouble &&
          r != ColumnVector::Rep::kEmpty) {
        return false;
      }
    }
    return true;
  }

  void AccumulateFast(const ColumnBatch& in) {
    const size_t naggs = aggs_->size();
    const size_t n = in.size();
    for (size_t r = 0; r < n; ++r) {
      uint32_t p = in.phys(r);
      key_buf_.clear();
      for (size_t gi : group_idx_) {
        int64_t kv = in.columns[gi]->ints()[p];
        key_buf_.append(reinterpret_cast<const char*>(&kv), sizeof(kv));
      }
      auto [it, inserted] = fast_lookup_.try_emplace(key_buf_,
                                                     fast_groups_.size());
      if (inserted) {
        fast_groups_.emplace_back();
        Row key;
        for (size_t gi : group_idx_) key.push_back(in.columns[gi]->GetValue(p));
        InitAggState(&fast_groups_.back(), std::move(key), naggs);
      }
      AggGroupState& st = fast_groups_[it->second];
      for (size_t a = 0; a < naggs; ++a) {
        const size_t ai = agg_idx_[a];
        if ((*aggs_)[a].func == AggFunc::kCount) {
          if (ai == SIZE_MAX || !in.columns[ai]->IsNull(p)) st.count[a]++;
          continue;
        }
        const ColumnVector& col = *in.columns[ai];
        if (col.IsNull(p)) continue;
        double num = ColNum(col, p);
        st.sum[a] += num;
        st.count[a]++;
        if (col.value_type() != DataType::kInt64) st.all_int[a] = false;
        if (st.count[a] == 1 || num < st.min_num[a]) {
          st.min_num[a] = num;
          st.min_v[a] = col.GetValue(p);
        }
        if (st.count[a] == 1 || num > st.max_num[a]) {
          st.max_num[a] = num;
          st.max_v[a] = col.GetValue(p);
        }
      }
    }
  }

  void MigrateToSlow() {
    for (auto& st : fast_groups_) {
      slow_groups_.emplace(RowToString(st.key), std::move(st));
    }
    fast_groups_.clear();
    fast_lookup_.clear();
    fast_ = false;
  }

  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  ColumnarCursorPtr child_;
  const std::vector<std::string>* group_by_;
  const std::vector<AggregateItem>* aggs_;
  ExecContext* ctx_;
  std::vector<size_t> group_idx_, agg_idx_;
  bool fast_ = true;
  std::unordered_map<std::string, size_t> fast_lookup_;  // raw key -> index
  std::vector<AggGroupState> fast_groups_;
  std::map<std::string, AggGroupState> slow_groups_;
  std::string key_buf_;
  Schema out_schema_;
  std::vector<Row> out_rows_;
  size_t pos_ = 0;
  bool child_closed_ = false;
};

/// --- Spill cursors -------------------------------------------------------
///
/// Engaged by the blocking operators' MakeCursor when the thread's memory
/// budget is non-zero. Every cursor buffers input up to the budget; if end
/// of stream arrives under budget it runs the exact in-memory row
/// algorithm, otherwise it partitions runs to disk and merges/re-probes out
/// of core. Rows, order, and cost counters are identical either way —
/// disk re-reads are never re-charged.

/// External merge sort. Runs hold consecutive input chunks, each sorted
/// stably; the k-way merge breaks key ties by run index, which together
/// reproduce one global stable_sort bit for bit.
class SpillSortCursor : public BatchCursor {
 public:
  SpillSortCursor(CursorPtr child, const std::vector<SortKey>* keys,
                  ExecContext* ctx)
      : child_(std::move(child)), keys_(keys), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    for (const auto& k : *keys_) {
      DIP_ASSIGN_OR_RETURN(size_t i,
                           child_->schema().RequireIndexOf(k.column));
      idx_.push_back(i);
      asc_.push_back(k.ascending);
    }
    const size_t budget = CurrentMemoryBudget();
    Batch in;
    size_t bytes = 0;
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in));
      if (in.empty()) break;
      ctx_->rows_processed += in.size();
      if (in.borrowed()) {
        for (const Row* r : in.refs) {
          bytes += ApproxRowBytes(*r);
          buffer_.push_back(*r);
        }
      } else {
        for (Row& r : in.rows) {
          bytes += ApproxRowBytes(r);
          buffer_.push_back(std::move(r));
        }
      }
      if (budget > 0 && bytes > budget) {
        DIP_RETURN_NOT_OK(FlushRun());
        bytes = 0;
      }
    }
    schema_ = child_->schema();
    CloseChild();
    ctx_->operator_invocations++;
    if (runs_ == 0) {
      SortBuffer();
      pos_ = 0;
      return Status::OK();
    }
    if (!buffer_.empty()) DIP_RETURN_NOT_OK(FlushRun());
    CountSpillMerge();
    for (size_t r = 0; r < runs_; ++r) {
      readers_.push_back(
          std::make_unique<SpillRunReader>(dir_, RunName("sort_", r)));
      Row row;
      if (readers_.back()->Next(&row)) heap_.push_back({std::move(row), r});
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapCmp{this});
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    if (runs_ == 0) {
      size_t n = std::min(kBatchCapacity, buffer_.size() - pos_);
      batch->rows.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch->rows.push_back(std::move(buffer_[pos_ + i]));
      }
      pos_ += n;
      return Status::OK();
    }
    HeapCmp cmp{this};
    while (batch->rows.size() < kBatchCapacity && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      Entry e = std::move(heap_.back());
      heap_.pop_back();
      batch->rows.push_back(std::move(e.row));
      Row next;
      if (readers_[e.run]->Next(&next)) {
        heap_.push_back({std::move(next), e.run});
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    return Status::OK();
  }
  void Close() override { CloseChild(); }
  const Schema& schema() const override { return schema_; }

 private:
  struct Entry {
    Row row;
    size_t run;
  };
  struct HeapCmp {
    const SpillSortCursor* c;
    // std::*_heap builds a max-heap; report "a after b" so the smallest
    // (key, run) pair pops first.
    bool operator()(const Entry& a, const Entry& b) const {
      if (c->RowLess(b.row, a.row)) return true;
      if (c->RowLess(a.row, b.row)) return false;
      return b.run < a.run;  // tie: earlier run first (stability)
    }
  };

  bool RowLess(const Row& a, const Row& b) const {
    for (size_t k = 0; k < idx_.size(); ++k) {
      int c = a[idx_[k]].Compare(b[idx_[k]]);
      if (c != 0) return asc_[k] ? c < 0 : c > 0;
    }
    return false;
  }
  void SortBuffer() {
    std::stable_sort(
        buffer_.begin(), buffer_.end(),
        [this](const Row& a, const Row& b) { return RowLess(a, b); });
  }
  Status FlushRun() {
    if (dir_ == nullptr) dir_ = std::make_shared<SpillDir>();
    SortBuffer();
    SpillRunWriter w(dir_, RunName("sort_", runs_));
    for (const Row& r : buffer_) w.Add(r);
    DIP_RETURN_NOT_OK(w.Finish());
    runs_++;
    buffer_.clear();
    return Status::OK();
  }
  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  CursorPtr child_;
  const std::vector<SortKey>* keys_;
  ExecContext* ctx_;
  std::vector<size_t> idx_;
  std::vector<bool> asc_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
  std::shared_ptr<SpillDir> dir_;
  size_t runs_ = 0;
  std::vector<std::unique_ptr<SpillRunReader>> readers_;
  std::vector<Entry> heap_;
  Schema schema_;
  bool child_closed_ = false;
};

/// Grouped aggregation under a memory budget. Over-budget input rows are
/// hash-partitioned RAW (by serialized group key) so each group lands
/// wholly in one partition with its rows in arrival order — per-group
/// double summation stays bit-identical to the in-memory path. Each
/// partition is aggregated independently, its groups written as a
/// key-sorted run, and the runs k-way merged by key, reproducing the
/// in-memory std::map's global serialized-key order.
class SpillAggregateCursor : public BatchCursor {
 public:
  SpillAggregateCursor(CursorPtr child,
                       const std::vector<std::string>* group_by,
                       const std::vector<AggregateItem>* aggs,
                       ExecContext* ctx)
      : child_(std::move(child)), group_by_(group_by), aggs_(aggs), ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(child_->Open());
    DIP_RETURN_NOT_OK(ResolveAggIndexes(child_->schema(), *group_by_, *aggs_,
                                        &group_idx_, &agg_idx_));
    const size_t budget = CurrentMemoryBudget();
    Batch in;
    size_t bytes = 0;
    for (;;) {
      DIP_RETURN_NOT_OK(child_->Next(&in));
      if (in.empty()) break;
      ctx_->rows_processed += in.size();
      for (size_t i = 0; i < in.size(); ++i) {
        Row row = in.borrowed() ? *in.refs[i] : std::move(in.rows[i]);
        if (!spilled_) {
          bytes += ApproxRowBytes(row);
          buffer_.push_back(std::move(row));
          if (budget > 0 && bytes > budget) StartSpill();
        } else {
          RouteRow(row);
        }
      }
    }
    out_schema_ = AggOutputSchema(child_->schema(), *group_by_, group_idx_,
                                  *aggs_);
    CloseChild();
    ctx_->operator_invocations++;
    if (!spilled_) {
      std::map<std::string, AggGroupState> groups;
      for (const Row& row : buffer_) {
        DIP_RETURN_NOT_OK(
            AccumulateAggRow(row, *aggs_, group_idx_, agg_idx_, &groups));
      }
      buffer_.clear();
      for (const auto& [key_str, st] : groups) {
        out_rows_.push_back(FinalizeAggGroup(st, *aggs_));
      }
      pos_ = 0;
      return Status::OK();
    }
    for (auto& w : writers_) DIP_RETURN_NOT_OK(w->Finish());
    CountSpillMerge();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      std::map<std::string, AggGroupState> groups;
      {
        SpillRunReader reader(dir_, RunName("agg_in_", p));
        Row row;
        while (reader.Next(&row)) {
          DIP_RETURN_NOT_OK(
              AccumulateAggRow(row, *aggs_, group_idx_, agg_idx_, &groups));
        }
      }
      SpillRunWriter w(dir_, RunName("agg_out_", p));
      for (const auto& [key_str, st] : groups) {
        w.AddKeyed(0, key_str, FinalizeAggGroup(st, *aggs_));
      }
      DIP_RETURN_NOT_OK(w.Finish());
    }
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      readers_.push_back(
          std::make_unique<SpillRunReader>(dir_, RunName("agg_out_", p)));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_.back()->Next(&tag, &key, &row)) {
        heap_.push_back({std::move(key), std::move(row), p});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), KeyHeapCmp{});
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    if (!spilled_) {
      size_t n = std::min(kBatchCapacity, out_rows_.size() - pos_);
      batch->rows.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch->rows.push_back(std::move(out_rows_[pos_ + i]));
      }
      pos_ += n;
      return Status::OK();
    }
    KeyHeapCmp cmp;
    while (batch->rows.size() < kBatchCapacity && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      KeyEntry e = std::move(heap_.back());
      heap_.pop_back();
      batch->rows.push_back(std::move(e.row));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_[e.run]->Next(&tag, &key, &row)) {
        heap_.push_back({std::move(key), std::move(row), e.run});
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    return Status::OK();
  }
  void Close() override { CloseChild(); }
  const Schema& schema() const override { return out_schema_; }

 private:
  void StartSpill() {
    spilled_ = true;
    dir_ = std::make_shared<SpillDir>();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      writers_.push_back(
          std::make_unique<SpillRunWriter>(dir_, RunName("agg_in_", p)));
    }
    for (const Row& row : buffer_) RouteRow(row);
    buffer_.clear();
  }
  void RouteRow(const Row& row) {
    Row key;
    for (size_t gi : group_idx_) key.push_back(row[gi]);
    writers_[Fnv1a(RowToString(key)) % kSpillPartitions]->Add(row);
  }
  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  CursorPtr child_;
  const std::vector<std::string>* group_by_;
  const std::vector<AggregateItem>* aggs_;
  ExecContext* ctx_;
  std::vector<size_t> group_idx_, agg_idx_;
  bool spilled_ = false;
  std::vector<Row> buffer_;
  std::shared_ptr<SpillDir> dir_;
  std::vector<std::unique_ptr<SpillRunWriter>> writers_;
  std::vector<std::unique_ptr<SpillRunReader>> readers_;
  std::vector<KeyEntry> heap_;
  Schema out_schema_;
  std::vector<Row> out_rows_;
  size_t pos_ = 0;
  bool child_closed_ = false;
};

/// UNION DISTINCT under a memory budget. Arriving rows are tagged with a
/// global arrival sequence; over budget they hash-partition by key (the
/// same HashRowKey the in-memory dedup uses, so Compare-equal rows always
/// share a partition). Per partition, first occurrences survive (file order
/// is ascending sequence) and survivor runs merge back by sequence —
/// exactly the in-memory first-occurrence arrival order.
class SpillUnionDistinctCursor : public BatchCursor {
 public:
  SpillUnionDistinctCursor(std::vector<CursorPtr> children,
                           const std::vector<std::string>* key_columns,
                           ExecContext* ctx)
      : children_(std::move(children)), key_columns_(key_columns), ctx_(ctx) {}

  Status Open() override {
    if (children_.empty()) {
      return Status::InvalidArgument("UNION of zero inputs");
    }
    const size_t budget = CurrentMemoryBudget();
    uint64_t seq = 0;
    size_t bytes = 0;
    for (size_t c = 0; c < children_.size(); ++c) {
      BatchCursor* child = children_[c].get();
      DIP_RETURN_NOT_OK(child->Open());
      if (c == 0) {
        // Keys resolve against the first input's schema (column names are
        // fixed from Open even while types are still provisional).
        if (key_columns_->empty()) {
          for (size_t i = 0; i < child->schema().num_columns(); ++i) {
            key_idx_.push_back(i);
          }
        } else {
          for (const auto& k : *key_columns_) {
            DIP_ASSIGN_OR_RETURN(size_t i, child->schema().RequireIndexOf(k));
            key_idx_.push_back(i);
          }
        }
      }
      Batch in;
      for (;;) {
        DIP_RETURN_NOT_OK(child->Next(&in));
        if (in.empty()) break;
        ctx_->rows_processed += in.size();
        for (size_t i = 0; i < in.size(); ++i) {
          Row row = in.borrowed() ? *in.refs[i] : std::move(in.rows[i]);
          if (!spilled_) {
            bytes += ApproxRowBytes(row);
            buffer_.push_back({seq, std::move(row), 0});
            if (budget > 0 && bytes > budget) StartSpill();
          } else {
            RouteRow(seq, row);
          }
          ++seq;
        }
      }
      if (c == 0) {
        schema_ = child->schema();
      } else if (child->schema().num_columns() != schema_.num_columns()) {
        return Status::TypeMismatch("UNION input arity mismatch");
      }
      child->Close();
      closed_upto_ = c + 1;
    }
    ctx_->operator_invocations++;
    if (!spilled_) {
      std::unordered_multimap<size_t, size_t> seen;  // hash -> out row index
      for (auto& e : buffer_) {
        if (!IsDuplicate(e.row, out_rows_, seen)) {
          seen.emplace(HashRowKey(e.row, key_idx_), out_rows_.size());
          out_rows_.push_back(std::move(e.row));
        }
      }
      buffer_.clear();
      pos_ = 0;
      return Status::OK();
    }
    for (auto& w : writers_) DIP_RETURN_NOT_OK(w->Finish());
    CountSpillMerge();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      SpillRunReader reader(dir_, RunName("union_in_", p));
      SpillRunWriter keep(dir_, RunName("union_out_", p));
      std::unordered_multimap<size_t, size_t> seen;
      std::vector<Row> kept;
      uint64_t tag;
      std::string key;
      Row row;
      while (reader.Next(&tag, &key, &row)) {
        if (!IsDuplicate(row, kept, seen)) {
          keep.AddTagged(tag, row);
          seen.emplace(HashRowKey(row, key_idx_), kept.size());
          kept.push_back(std::move(row));
        }
      }
      DIP_RETURN_NOT_OK(keep.Finish());
    }
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      readers_.push_back(
          std::make_unique<SpillRunReader>(dir_, RunName("union_out_", p)));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_.back()->Next(&tag, &key, &row)) {
        heap_.push_back({tag, std::move(row), p});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), SeqHeapCmp{});
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    if (!spilled_) {
      size_t n = std::min(kBatchCapacity, out_rows_.size() - pos_);
      batch->rows.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch->rows.push_back(std::move(out_rows_[pos_ + i]));
      }
      pos_ += n;
      return Status::OK();
    }
    SeqHeapCmp cmp;
    while (batch->rows.size() < kBatchCapacity && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      SeqEntry e = std::move(heap_.back());
      heap_.pop_back();
      batch->rows.push_back(std::move(e.row));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_[e.run]->Next(&tag, &key, &row)) {
        heap_.push_back({tag, std::move(row), e.run});
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    return Status::OK();
  }
  void Close() override {
    for (size_t c = closed_upto_; c < children_.size(); ++c) {
      children_[c]->Close();
    }
    closed_upto_ = children_.size();
  }
  const Schema& schema() const override { return schema_; }

 private:
  bool IsDuplicate(const Row& row, const std::vector<Row>& kept,
                   const std::unordered_multimap<size_t, size_t>& seen) const {
    auto range = seen.equal_range(HashRowKey(row, key_idx_));
    for (auto it = range.first; it != range.second; ++it) {
      const Row& prev = kept[it->second];
      bool equal = true;
      for (size_t k : key_idx_) {
        if (prev[k].Compare(row[k]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) return true;
    }
    return false;
  }
  void StartSpill() {
    spilled_ = true;
    dir_ = std::make_shared<SpillDir>();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      writers_.push_back(
          std::make_unique<SpillRunWriter>(dir_, RunName("union_in_", p)));
    }
    for (const auto& e : buffer_) RouteRow(e.seq, e.row);
    buffer_.clear();
  }
  void RouteRow(uint64_t seq, const Row& row) {
    writers_[HashRowKey(row, key_idx_) % kSpillPartitions]->AddTagged(seq,
                                                                      row);
  }

  std::vector<CursorPtr> children_;
  const std::vector<std::string>* key_columns_;
  ExecContext* ctx_;
  std::vector<size_t> key_idx_;
  bool spilled_ = false;
  std::vector<SeqEntry> buffer_;
  std::shared_ptr<SpillDir> dir_;
  std::vector<std::unique_ptr<SpillRunWriter>> writers_;
  std::vector<std::unique_ptr<SpillRunReader>> readers_;
  std::vector<SeqEntry> heap_;
  Schema schema_;
  std::vector<Row> out_rows_;
  size_t pos_ = 0;
  size_t closed_upto_ = 0;
};

/// Grace hash join under a memory budget. The build side buffers until the
/// budget trips, then hash-partitions to disk; once spilled, probe rows are
/// sequence-tagged and partitioned by the same key hash. Each partition
/// rebuilds its build multimap in arrival order — the equal_range iteration
/// order of equal keys depends only on their relative insertion order,
/// which partitioning preserves — and re-probes, so merging the joined runs
/// back by probe sequence reproduces the in-memory output exactly. Under
/// budget, the in-memory HashJoinCursor algorithm runs as is (streaming
/// probe).
class GraceHashJoinCursor : public BatchCursor {
 public:
  GraceHashJoinCursor(CursorPtr left, CursorPtr right,
                      const std::vector<std::string>* lkeys,
                      const std::vector<std::string>* rkeys, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(lkeys),
        rkeys_(rkeys),
        ctx_(ctx) {}

  Status Open() override {
    DIP_RETURN_NOT_OK(left_->Open());
    DIP_RETURN_NOT_OK(right_->Open());
    if (lkeys_->size() != rkeys_->size() || lkeys_->empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    for (const auto& k : *lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, left_->schema().RequireIndexOf(k));
      lidx_.push_back(i);
    }
    for (const auto& k : *rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, right_->schema().RequireIndexOf(k));
      ridx_.push_back(i);
    }
    const size_t budget = CurrentMemoryBudget();
    size_t bytes = 0;
    Batch in;
    for (;;) {
      DIP_RETURN_NOT_OK(right_->Next(&in));
      if (in.empty()) break;
      ctx_->rows_processed += in.size();
      for (size_t i = 0; i < in.size(); ++i) {
        Row row = in.borrowed() ? *in.refs[i] : std::move(in.rows[i]);
        if (!spilled_) {
          bytes += ApproxRowBytes(row);
          build_rows_.push_back(std::move(row));
          if (budget > 0 && bytes > budget) StartSpill();
        } else {
          build_writers_[HashRowKey(row, ridx_) % kSpillPartitions]->Add(row);
        }
      }
    }
    build_schema_ = right_->schema();
    right_->Close();
    right_closed_ = true;
    ctx_->operator_invocations++;
    if (!spilled_) {
      build_.reserve(build_rows_.size());
      for (size_t i = 0; i < build_rows_.size(); ++i) {
        build_.emplace(HashRowKey(build_rows_[i], ridx_), i);
      }
      return Status::OK();
    }
    // Spilled: sequence-tag and partition the probe side too.
    uint64_t seq = 0;
    for (;;) {
      DIP_RETURN_NOT_OK(left_->Next(&in));
      if (in.empty()) break;
      ctx_->rows_processed += in.size();
      for (size_t i = 0; i < in.size(); ++i) {
        const Row& lrow = in.row(i);
        probe_writers_[HashRowKey(lrow, lidx_) % kSpillPartitions]->AddTagged(
            seq, lrow);
        ++seq;
      }
    }
    left_schema_ = left_->schema();
    left_->Close();
    left_closed_ = true;
    for (auto& w : build_writers_) DIP_RETURN_NOT_OK(w->Finish());
    for (auto& w : probe_writers_) DIP_RETURN_NOT_OK(w->Finish());
    CountSpillMerge();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      std::vector<Row> part_build;
      {
        SpillRunReader r(dir_, RunName("join_build_", p));
        Row row;
        while (r.Next(&row)) part_build.push_back(std::move(row));
      }
      std::unordered_multimap<size_t, size_t> map;
      map.reserve(part_build.size());
      for (size_t i = 0; i < part_build.size(); ++i) {
        map.emplace(HashRowKey(part_build[i], ridx_), i);
      }
      SpillRunReader probe(dir_, RunName("join_probe_", p));
      SpillRunWriter out(dir_, RunName("join_out_", p));
      uint64_t tag;
      std::string key;
      Row lrow;
      while (probe.Next(&tag, &key, &lrow)) {
        auto range = map.equal_range(HashRowKey(lrow, lidx_));
        for (auto it = range.first; it != range.second; ++it) {
          const Row& rrow = part_build[it->second];
          if (!KeysMatch(lrow, rrow)) continue;
          Row joined = lrow;
          joined.insert(joined.end(), rrow.begin(), rrow.end());
          out.AddTagged(tag, joined);
        }
      }
      DIP_RETURN_NOT_OK(out.Finish());
    }
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      readers_.push_back(
          std::make_unique<SpillRunReader>(dir_, RunName("join_out_", p)));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_.back()->Next(&tag, &key, &row)) {
        heap_.push_back({tag, std::move(row), p});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), SeqHeapCmp{});
    return Status::OK();
  }
  Status Next(Batch* batch) override {
    batch->clear();
    if (!spilled_) {
      for (;;) {
        DIP_RETURN_NOT_OK(left_->Next(&in_));
        if (in_.empty()) return Status::OK();
        for (size_t r = 0; r < in_.size(); ++r) {
          const Row& lrow = in_.row(r);
          ctx_->rows_processed++;
          auto range = build_.equal_range(HashRowKey(lrow, lidx_));
          for (auto it = range.first; it != range.second; ++it) {
            const Row& rrow = build_rows_[it->second];
            if (!KeysMatch(lrow, rrow)) continue;
            Row joined = lrow;
            joined.insert(joined.end(), rrow.begin(), rrow.end());
            batch->rows.push_back(std::move(joined));
          }
        }
        if (!batch->rows.empty()) return Status::OK();
      }
    }
    SeqHeapCmp cmp;
    while (batch->rows.size() < kBatchCapacity && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      SeqEntry e = std::move(heap_.back());
      heap_.pop_back();
      batch->rows.push_back(std::move(e.row));
      uint64_t tag;
      std::string key;
      Row row;
      if (readers_[e.run]->Next(&tag, &key, &row)) {
        heap_.push_back({tag, std::move(row), e.run});
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    return Status::OK();
  }
  void Close() override {
    if (!left_closed_) {
      left_closed_ = true;
      left_->Close();
    }
    if (!right_closed_) {
      right_closed_ = true;
      right_->Close();
    }
  }
  const Schema& schema() const override {
    // Rebuilt on demand: the probe-side schema may still be provisional
    // mid-stream in the in-memory mode (mirrors HashJoinCursor).
    Schema s = spilled_ ? left_schema_ : left_->schema();
    for (const auto& col : build_schema_.columns()) {
      std::string name = col.name;
      while (s.HasColumn(name)) name = "r_" + name;
      s.AddColumn(name, col.type, col.nullable);
    }
    schema_cache_ = std::move(s);
    return schema_cache_;
  }

 private:
  bool KeysMatch(const Row& lrow, const Row& rrow) const {
    for (size_t k = 0; k < lidx_.size(); ++k) {
      if (lrow[lidx_[k]].Compare(rrow[ridx_[k]]) != 0 ||
          lrow[lidx_[k]].is_null()) {
        return false;
      }
    }
    return true;
  }
  void StartSpill() {
    spilled_ = true;
    dir_ = std::make_shared<SpillDir>();
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      build_writers_.push_back(std::make_unique<SpillRunWriter>(
          dir_, RunName("join_build_", p)));
      probe_writers_.push_back(std::make_unique<SpillRunWriter>(
          dir_, RunName("join_probe_", p)));
    }
    for (const Row& row : build_rows_) {
      build_writers_[HashRowKey(row, ridx_) % kSpillPartitions]->Add(row);
    }
    build_rows_.clear();
  }

  CursorPtr left_, right_;
  const std::vector<std::string>* lkeys_;
  const std::vector<std::string>* rkeys_;
  ExecContext* ctx_;
  std::vector<size_t> lidx_, ridx_;
  bool spilled_ = false;
  std::vector<Row> build_rows_;
  std::unordered_multimap<size_t, size_t> build_;
  std::shared_ptr<SpillDir> dir_;
  std::vector<std::unique_ptr<SpillRunWriter>> build_writers_, probe_writers_;
  std::vector<std::unique_ptr<SpillRunReader>> readers_;
  std::vector<SeqEntry> heap_;
  Schema build_schema_, left_schema_;
  Batch in_;
  bool left_closed_ = false, right_closed_ = false;
  mutable Schema schema_cache_;
};

class ScanTableNode : public PlanNode {
 public:
  explicit ScanTableNode(const Table* table) : table_(table) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CursorPtr shim = TryColumnarShim(*this, ctx)) return shim;
    return std::make_unique<ScanTableCursor>(table_, ctx);
  }
  ColumnarCursorPtr MakeColumnarCursor(ExecContext* ctx) const override {
    return std::make_unique<ColumnarScanCursor>(table_, ctx);
  }
  std::string ToString() const override {
    return "Scan(" + table_->name() + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    out.rows = table_->ScanAll();
    ctx->rows_processed += out.rows.size();
    return out;
  }

 private:
  const Table* table_;
};

class IndexRangeScanNode : public PlanNode {
 public:
  IndexRangeScanNode(const Table* table, std::string index_name, Value lo,
                     Value hi)
      : table_(table),
        index_name_(std::move(index_name)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}
  std::string ToString() const override {
    return "IndexRangeScan(" + table_->name() + "." + index_name_ + ", [" +
           lo_.ToString() + ", " + hi_.ToString() + "])";
  }

 protected:
  // Blocking in both modes: the ordered index delivers the full range.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    DIP_ASSIGN_OR_RETURN(out.rows, table_->LookupRange(index_name_, lo_, hi_));
    ctx->rows_processed += out.rows.size();
    return out;
  }

 private:
  const Table* table_;
  std::string index_name_;
  Value lo_, hi_;
};

class ScanValuesNode : public PlanNode {
 public:
  explicit ScanValuesNode(RowSet rows) : rows_(std::move(rows)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<RowSliceCursor>(&rows_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("Values(%zu rows)", rows_.rows.size());
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    ctx->rows_processed += rows_.rows.size();
    return rows_;
  }

 private:
  RowSet rows_;
};

class ScanValuesRefNode : public PlanNode {
 public:
  explicit ScanValuesRefNode(const RowSet* rows) : rows_(rows) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<RowSliceCursor>(rows_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("ValuesRef(%zu rows)", rows_->rows.size());
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    ctx->rows_processed += rows_->rows.size();
    return *rows_;
  }

 private:
  const RowSet* rows_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CursorPtr shim = TryColumnarShim(*this, ctx)) return shim;
    return std::make_unique<FilterCursor>(child_->MakeCursor(ctx), predicate_,
                                          ctx);
  }
  ColumnarCursorPtr MakeColumnarCursor(ExecContext* ctx) const override {
    ColumnarCursorPtr child = child_->MakeColumnarCursor(ctx);
    if (child == nullptr) return nullptr;
    return std::make_unique<ColumnarFilterCursor>(std::move(child), predicate_,
                                                  ctx);
  }
  std::string ToString() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    out.schema = in.schema;
    for (auto& row : in.rows) {
      ctx->rows_processed++;
      DIP_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(row, in.schema));
      if (!keep.is_null() && keep.type() == DataType::kBool && keep.AsBool()) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ProjectionItem> items)
      : child_(std::move(child)), items_(std::move(items)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CursorPtr shim = TryColumnarShim(*this, ctx)) return shim;
    return std::make_unique<ProjectCursor>(child_->MakeCursor(ctx), &items_,
                                           ctx);
  }
  ColumnarCursorPtr MakeColumnarCursor(ExecContext* ctx) const override {
    // Columnar projection supports only bare uncast column references
    // (pure column remaps); anything computed falls back to the row path.
    for (const auto& item : items_) {
      if (item.cast_to != DataType::kNull ||
          ColumnRefName(*item.expr) == nullptr) {
        return nullptr;
      }
    }
    ColumnarCursorPtr child = child_->MakeColumnarCursor(ctx);
    if (child == nullptr) return nullptr;
    return std::make_unique<ColumnarProjectCursor>(std::move(child), &items_,
                                                   ctx);
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& i : items_) {
      parts.push_back(i.name + "=" + i.expr->ToString());
    }
    return "Project(" + StrJoin(parts, ", ") + ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    for (const auto& item : items_) {
      // Output column type: forced cast target, else inferred lazily below.
      out.schema.AddColumn(item.name, item.cast_to == DataType::kNull
                                          ? DataType::kNull
                                          : item.cast_to);
    }
    out.rows.reserve(in.rows.size());
    std::vector<DataType> inferred(items_.size(), DataType::kNull);
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      Row projected;
      projected.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        DIP_ASSIGN_OR_RETURN(Value v, items_[i].expr->Eval(row, in.schema));
        if (items_[i].cast_to != DataType::kNull) {
          DIP_ASSIGN_OR_RETURN(v, v.CastTo(items_[i].cast_to));
        }
        if (inferred[i] == DataType::kNull && !v.is_null()) {
          inferred[i] = v.type();
        }
        projected.push_back(std::move(v));
      }
      out.rows.push_back(std::move(projected));
    }
    // Fill inferred types into the schema for downstream consumers.
    Schema finalized;
    for (size_t i = 0; i < items_.size(); ++i) {
      DataType t = items_[i].cast_to != DataType::kNull ? items_[i].cast_to
                                                        : inferred[i];
      finalized.AddColumn(items_[i].name, t);
    }
    out.schema = finalized;
    return out;
  }

 private:
  PlanPtr child_;
  std::vector<ProjectionItem> items_;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> lkeys,
               std::vector<std::string> rkeys)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(std::move(lkeys)),
        rkeys_(std::move(rkeys)) {}

  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CurrentMemoryBudget() > 0) {
      return std::make_unique<GraceHashJoinCursor>(left_->MakeCursor(ctx),
                                                   right_->MakeCursor(ctx),
                                                   &lkeys_, &rkeys_, ctx);
    }
    return std::make_unique<HashJoinCursor>(left_->MakeCursor(ctx),
                                            right_->MakeCursor(ctx), &lkeys_,
                                            &rkeys_, ctx);
  }

  std::string ToString() const override {
    return "HashJoin(" + StrJoin(lkeys_, ",") + " = " + StrJoin(rkeys_, ",") +
           ")";
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet l, left_->Execute(ctx));
    DIP_ASSIGN_OR_RETURN(RowSet r, right_->Execute(ctx));
    ctx->operator_invocations++;
    if (lkeys_.size() != rkeys_.size() || lkeys_.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    std::vector<size_t> lidx, ridx;
    for (const auto& k : lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, l.schema.RequireIndexOf(k));
      lidx.push_back(i);
    }
    for (const auto& k : rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, r.schema.RequireIndexOf(k));
      ridx.push_back(i);
    }
    // Build on the right side.
    std::unordered_multimap<size_t, size_t> build;
    build.reserve(r.rows.size());
    for (size_t i = 0; i < r.rows.size(); ++i) {
      ctx->rows_processed++;
      build.emplace(HashRowKey(r.rows[i], ridx), i);
    }
    RowSet out;
    out.schema = l.schema;
    for (const auto& col : r.schema.columns()) {
      std::string name = col.name;
      while (out.schema.HasColumn(name)) name = "r_" + name;
      out.schema.AddColumn(name, col.type, col.nullable);
    }
    for (const auto& lrow : l.rows) {
      ctx->rows_processed++;
      size_t h = HashRowKey(lrow, lidx);
      auto range = build.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        const Row& rrow = r.rows[it->second];
        bool match = true;
        for (size_t k = 0; k < lidx.size(); ++k) {
          if (lrow[lidx[k]].Compare(rrow[ridx[k]]) != 0 ||
              lrow[lidx[k]].is_null()) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Row joined = lrow;
        joined.insert(joined.end(), rrow.begin(), rrow.end());
        out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }

 private:
  PlanPtr left_, right_;
  std::vector<std::string> lkeys_, rkeys_;
};

class UnionDistinctNode : public PlanNode {
 public:
  UnionDistinctNode(std::vector<PlanPtr> children,
                    std::vector<std::string> key_columns)
      : children_(std::move(children)), key_columns_(std::move(key_columns)) {}

  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CurrentMemoryBudget() == 0) return PlanNode::MakeCursor(ctx);
    std::vector<CursorPtr> kids;
    kids.reserve(children_.size());
    for (const auto& c : children_) kids.push_back(c->MakeCursor(ctx));
    return std::make_unique<SpillUnionDistinctCursor>(std::move(kids),
                                                      &key_columns_, ctx);
  }

  std::string ToString() const override {
    return StrFormat("UnionDistinct(%zu inputs, key=[%s])", children_.size(),
                     StrJoin(key_columns_, ",").c_str());
  }

 protected:
  // Blocking: dedup needs all inputs. Children stream via Execute dispatch.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    if (children_.empty()) {
      return Status::InvalidArgument("UNION of zero inputs");
    }
    std::vector<RowSet> inputs;
    for (const auto& c : children_) {
      DIP_ASSIGN_OR_RETURN(RowSet rs, c->Execute(ctx));
      inputs.push_back(std::move(rs));
    }
    ctx->operator_invocations++;
    RowSet out;
    out.schema = inputs[0].schema;
    std::vector<size_t> key_idx;
    if (key_columns_.empty()) {
      for (size_t i = 0; i < out.schema.num_columns(); ++i) {
        key_idx.push_back(i);
      }
    } else {
      for (const auto& k : key_columns_) {
        DIP_ASSIGN_OR_RETURN(size_t i, out.schema.RequireIndexOf(k));
        key_idx.push_back(i);
      }
    }
    // Hash set over key projections with collision verification.
    std::unordered_multimap<size_t, size_t> seen;  // hash -> out row index
    for (auto& input : inputs) {
      if (input.schema.num_columns() != out.schema.num_columns()) {
        return Status::TypeMismatch("UNION input arity mismatch");
      }
      for (auto& row : input.rows) {
        ctx->rows_processed++;
        size_t h = HashRowKey(row, key_idx);
        bool duplicate = false;
        auto range = seen.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Row& prev = out.rows[it->second];
          bool equal = true;
          for (size_t k : key_idx) {
            if (prev[k].Compare(row[k]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          seen.emplace(h, out.rows.size());
          out.rows.push_back(std::move(row));
        }
      }
    }
    return out;
  }

 private:
  std::vector<PlanPtr> children_;
  std::vector<std::string> key_columns_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggregateItem> aggs)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CurrentMemoryBudget() > 0) {
      return std::make_unique<SpillAggregateCursor>(child_->MakeCursor(ctx),
                                                    &group_by_, &aggs_, ctx);
    }
    if (CurrentExecMode() == ExecMode::kColumnar) {
      if (ColumnarCursorPtr cc = child_->MakeColumnarCursor(ctx)) {
        return std::make_unique<ColumnarAggregateCursor>(std::move(cc),
                                                         &group_by_, &aggs_,
                                                         ctx);
      }
    }
    return PlanNode::MakeCursor(ctx);
  }

  std::string ToString() const override {
    return StrFormat("Aggregate(group=[%s], %zu aggs)",
                     StrJoin(group_by_, ",").c_str(), aggs_.size());
  }

 protected:
  // Blocking: groups close only at end of input. Child streams via Execute.
  // Shares the grouped-aggregation core with the columnar and spilling
  // cursors — one implementation of the group semantics for every mode.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    std::vector<size_t> group_idx, agg_idx;
    DIP_RETURN_NOT_OK(
        ResolveAggIndexes(in.schema, group_by_, aggs_, &group_idx, &agg_idx));
    // Keyed by serialized group key for deterministic iteration below.
    std::map<std::string, AggGroupState> groups;
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      DIP_RETURN_NOT_OK(
          AccumulateAggRow(row, aggs_, group_idx, agg_idx, &groups));
    }
    RowSet out;
    out.schema = AggOutputSchema(in.schema, group_by_, group_idx, aggs_);
    for (const auto& [key_str, st] : groups) {
      out.rows.push_back(FinalizeAggGroup(st, aggs_));
    }
    return out;
  }

 private:
  PlanPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggregateItem> aggs_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    if (CurrentMemoryBudget() == 0) return PlanNode::MakeCursor(ctx);
    return std::make_unique<SpillSortCursor>(child_->MakeCursor(ctx), &keys_,
                                             ctx);
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& k : keys_) {
      parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
    }
    return "Sort(" + StrJoin(parts, ", ") + ")";
  }

 protected:
  // Blocking: order is only known once all input has arrived.
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    ctx->rows_processed += in.rows.size();
    std::vector<size_t> idx;
    std::vector<bool> asc;
    for (const auto& k : keys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, in.schema.RequireIndexOf(k.column));
      idx.push_back(i);
      asc.push_back(k.ascending);
    }
    std::stable_sort(in.rows.begin(), in.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < idx.size(); ++k) {
                         int c = a[idx[k]].Compare(b[idx[k]]);
                         if (c != 0) return asc[k] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    return in;
  }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  CursorPtr MakeCursor(ExecContext* ctx) const override {
    return std::make_unique<LimitCursor>(child_->MakeCursor(ctx), limit_, ctx);
  }
  std::string ToString() const override {
    return StrFormat("Limit(%zu)", limit_);
  }

 protected:
  Result<RowSet> ExecuteMaterialized(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    if (in.rows.size() > limit_) in.rows.resize(limit_);
    ctx->rows_processed += in.rows.size();
    return in;
  }

 private:
  PlanPtr child_;
  size_t limit_;
};

}  // namespace

PlanPtr ScanTable(const Table* table) {
  return std::make_shared<ScanTableNode>(table);
}
PlanPtr IndexRangeScan(const Table* table, std::string index_name, Value lo,
                       Value hi) {
  return std::make_shared<IndexRangeScanNode>(table, std::move(index_name),
                                              std::move(lo), std::move(hi));
}
PlanPtr ScanValues(RowSet rows) {
  return std::make_shared<ScanValuesNode>(std::move(rows));
}
PlanPtr ScanValuesRef(const RowSet* rows) {
  return std::make_shared<ScanValuesRefNode>(rows);
}
PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(child), std::move(predicate));
}
PlanPtr Project(PlanPtr child, std::vector<ProjectionItem> items) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(items));
}
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys));
}
PlanPtr UnionDistinct(std::vector<PlanPtr> children,
                      std::vector<std::string> key_columns) {
  return std::make_shared<UnionDistinctNode>(std::move(children),
                                             std::move(key_columns));
}
PlanPtr Distinct(PlanPtr child) {
  std::vector<PlanPtr> children{std::move(child)};
  return UnionDistinct(std::move(children), {});
}
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates) {
  return std::make_shared<AggregateNode>(std::move(child), std::move(group_by),
                                         std::move(aggregates));
}
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}
PlanPtr Limit(PlanPtr child, size_t limit) {
  return std::make_shared<LimitNode>(std::move(child), limit);
}

Result<size_t> InsertInto(Table* table, const RowSet& rows) {
  size_t inserted = 0;
  for (const auto& row : rows.rows) {
    Status st = table->Insert(row);
    if (st.ok()) {
      ++inserted;
    } else if (st.code() != StatusCode::kAlreadyExists) {
      return st;
    }
  }
  return inserted;
}

Result<size_t> UpsertInto(Table* table, const RowSet& rows) {
  size_t written = 0;
  for (const auto& row : rows.rows) {
    DIP_RETURN_NOT_OK(table->InsertOrReplace(row));
    ++written;
  }
  return written;
}

}  // namespace dipbench
