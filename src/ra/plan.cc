#include "src/ra/plan.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/common/string_util.h"

namespace dipbench {

size_t RowSet::ByteSize() const {
  size_t total = 0;
  for (const auto& r : rows) {
    for (const auto& v : r) total += v.ByteSize();
  }
  return total;
}

namespace {

class ScanTableNode : public PlanNode {
 public:
  explicit ScanTableNode(const Table* table) : table_(table) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    out.rows = table_->ScanAll();
    ctx->rows_processed += out.rows.size();
    return out;
  }
  std::string ToString() const override {
    return "Scan(" + table_->name() + ")";
  }

 private:
  const Table* table_;
};

class IndexRangeScanNode : public PlanNode {
 public:
  IndexRangeScanNode(const Table* table, std::string index_name, Value lo,
                     Value hi)
      : table_(table),
        index_name_(std::move(index_name)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    RowSet out;
    out.schema = table_->schema();
    DIP_ASSIGN_OR_RETURN(out.rows, table_->LookupRange(index_name_, lo_, hi_));
    ctx->rows_processed += out.rows.size();
    return out;
  }
  std::string ToString() const override {
    return "IndexRangeScan(" + table_->name() + "." + index_name_ + ", [" +
           lo_.ToString() + ", " + hi_.ToString() + "])";
  }

 private:
  const Table* table_;
  std::string index_name_;
  Value lo_, hi_;
};

class ScanValuesNode : public PlanNode {
 public:
  explicit ScanValuesNode(RowSet rows) : rows_(std::move(rows)) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    ctx->operator_invocations++;
    ctx->rows_processed += rows_.rows.size();
    return rows_;
  }
  std::string ToString() const override {
    return StrFormat("Values(%zu rows)", rows_.rows.size());
  }

 private:
  RowSet rows_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    out.schema = in.schema;
    for (auto& row : in.rows) {
      ctx->rows_processed++;
      DIP_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(row, in.schema));
      if (!keep.is_null() && keep.type() == DataType::kBool && keep.AsBool()) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }
  std::string ToString() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ProjectionItem> items)
      : child_(std::move(child)), items_(std::move(items)) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    RowSet out;
    for (const auto& item : items_) {
      // Output column type: forced cast target, else inferred lazily below.
      out.schema.AddColumn(item.name, item.cast_to == DataType::kNull
                                          ? DataType::kNull
                                          : item.cast_to);
    }
    out.rows.reserve(in.rows.size());
    std::vector<DataType> inferred(items_.size(), DataType::kNull);
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      Row projected;
      projected.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        DIP_ASSIGN_OR_RETURN(Value v, items_[i].expr->Eval(row, in.schema));
        if (items_[i].cast_to != DataType::kNull) {
          DIP_ASSIGN_OR_RETURN(v, v.CastTo(items_[i].cast_to));
        }
        if (inferred[i] == DataType::kNull && !v.is_null()) {
          inferred[i] = v.type();
        }
        projected.push_back(std::move(v));
      }
      out.rows.push_back(std::move(projected));
    }
    // Fill inferred types into the schema for downstream consumers.
    Schema finalized;
    for (size_t i = 0; i < items_.size(); ++i) {
      DataType t = items_[i].cast_to != DataType::kNull ? items_[i].cast_to
                                                        : inferred[i];
      finalized.AddColumn(items_[i].name, t);
    }
    out.schema = finalized;
    return out;
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& i : items_) {
      parts.push_back(i.name + "=" + i.expr->ToString());
    }
    return "Project(" + StrJoin(parts, ", ") + ")";
  }

 private:
  PlanPtr child_;
  std::vector<ProjectionItem> items_;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> lkeys,
               std::vector<std::string> rkeys)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(std::move(lkeys)),
        rkeys_(std::move(rkeys)) {}

  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet l, left_->Execute(ctx));
    DIP_ASSIGN_OR_RETURN(RowSet r, right_->Execute(ctx));
    ctx->operator_invocations++;
    if (lkeys_.size() != rkeys_.size() || lkeys_.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    std::vector<size_t> lidx, ridx;
    for (const auto& k : lkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, l.schema.RequireIndexOf(k));
      lidx.push_back(i);
    }
    for (const auto& k : rkeys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, r.schema.RequireIndexOf(k));
      ridx.push_back(i);
    }
    // Build on the right side.
    std::unordered_multimap<size_t, size_t> build;
    build.reserve(r.rows.size());
    for (size_t i = 0; i < r.rows.size(); ++i) {
      ctx->rows_processed++;
      build.emplace(HashRowKey(r.rows[i], ridx), i);
    }
    RowSet out;
    out.schema = l.schema;
    for (const auto& col : r.schema.columns()) {
      std::string name = col.name;
      while (out.schema.HasColumn(name)) name = "r_" + name;
      out.schema.AddColumn(name, col.type, col.nullable);
    }
    for (const auto& lrow : l.rows) {
      ctx->rows_processed++;
      size_t h = HashRowKey(lrow, lidx);
      auto range = build.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        const Row& rrow = r.rows[it->second];
        bool match = true;
        for (size_t k = 0; k < lidx.size(); ++k) {
          if (lrow[lidx[k]].Compare(rrow[ridx[k]]) != 0 ||
              lrow[lidx[k]].is_null()) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Row joined = lrow;
        joined.insert(joined.end(), rrow.begin(), rrow.end());
        out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "HashJoin(" + StrJoin(lkeys_, ",") + " = " + StrJoin(rkeys_, ",") +
           ")";
  }

 private:
  PlanPtr left_, right_;
  std::vector<std::string> lkeys_, rkeys_;
};

class UnionDistinctNode : public PlanNode {
 public:
  UnionDistinctNode(std::vector<PlanPtr> children,
                    std::vector<std::string> key_columns)
      : children_(std::move(children)), key_columns_(std::move(key_columns)) {}

  Result<RowSet> Execute(ExecContext* ctx) const override {
    if (children_.empty()) {
      return Status::InvalidArgument("UNION of zero inputs");
    }
    std::vector<RowSet> inputs;
    for (const auto& c : children_) {
      DIP_ASSIGN_OR_RETURN(RowSet rs, c->Execute(ctx));
      inputs.push_back(std::move(rs));
    }
    ctx->operator_invocations++;
    RowSet out;
    out.schema = inputs[0].schema;
    std::vector<size_t> key_idx;
    if (key_columns_.empty()) {
      for (size_t i = 0; i < out.schema.num_columns(); ++i) {
        key_idx.push_back(i);
      }
    } else {
      for (const auto& k : key_columns_) {
        DIP_ASSIGN_OR_RETURN(size_t i, out.schema.RequireIndexOf(k));
        key_idx.push_back(i);
      }
    }
    // Hash set over key projections with collision verification.
    std::unordered_multimap<size_t, size_t> seen;  // hash -> out row index
    for (auto& input : inputs) {
      if (input.schema.num_columns() != out.schema.num_columns()) {
        return Status::TypeMismatch("UNION input arity mismatch");
      }
      for (auto& row : input.rows) {
        ctx->rows_processed++;
        size_t h = HashRowKey(row, key_idx);
        bool duplicate = false;
        auto range = seen.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Row& prev = out.rows[it->second];
          bool equal = true;
          for (size_t k : key_idx) {
            if (prev[k].Compare(row[k]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          seen.emplace(h, out.rows.size());
          out.rows.push_back(std::move(row));
        }
      }
    }
    return out;
  }

  std::string ToString() const override {
    return StrFormat("UnionDistinct(%zu inputs, key=[%s])", children_.size(),
                     StrJoin(key_columns_, ",").c_str());
  }

 private:
  std::vector<PlanPtr> children_;
  std::vector<std::string> key_columns_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggregateItem> aggs)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    std::vector<size_t> group_idx;
    for (const auto& g : group_by_) {
      DIP_ASSIGN_OR_RETURN(size_t i, in.schema.RequireIndexOf(g));
      group_idx.push_back(i);
    }
    std::vector<size_t> agg_idx(aggs_.size(), SIZE_MAX);
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (!aggs_[i].input_column.empty()) {
        DIP_ASSIGN_OR_RETURN(size_t idx,
                             in.schema.RequireIndexOf(aggs_[i].input_column));
        agg_idx[i] = idx;
      } else if (aggs_[i].func != AggFunc::kCount) {
        return Status::InvalidArgument("aggregate needs an input column");
      }
    }

    struct GroupState {
      Row key;
      std::vector<double> sum;
      std::vector<int64_t> count;
      std::vector<Value> min_v, max_v;
      std::vector<bool> all_int;
    };
    // Keyed by serialized group key for deterministic iteration below.
    std::map<std::string, GroupState> groups;
    for (const auto& row : in.rows) {
      ctx->rows_processed++;
      Row key;
      for (size_t gi : group_idx) key.push_back(row[gi]);
      std::string key_str = RowToString(key);
      auto [it, inserted] = groups.try_emplace(key_str);
      GroupState& st = it->second;
      if (inserted) {
        st.key = key;
        st.sum.assign(aggs_.size(), 0.0);
        st.count.assign(aggs_.size(), 0);
        st.min_v.assign(aggs_.size(), Value::Null());
        st.max_v.assign(aggs_.size(), Value::Null());
        st.all_int.assign(aggs_.size(), true);
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const Value* v = agg_idx[a] == SIZE_MAX ? nullptr : &row[agg_idx[a]];
        if (aggs_[a].func == AggFunc::kCount) {
          if (v == nullptr || !v->is_null()) st.count[a]++;
          continue;
        }
        if (v == nullptr || v->is_null()) continue;
        DIP_ASSIGN_OR_RETURN(double num, v->ToNumeric());
        st.sum[a] += num;
        st.count[a]++;
        if (v->type() != DataType::kInt64) st.all_int[a] = false;
        if (st.min_v[a].is_null() || v->Compare(st.min_v[a]) < 0) {
          st.min_v[a] = *v;
        }
        if (st.max_v[a].is_null() || v->Compare(st.max_v[a]) > 0) {
          st.max_v[a] = *v;
        }
      }
    }

    RowSet out;
    for (size_t g = 0; g < group_by_.size(); ++g) {
      const Column& c = in.schema.column(group_idx[g]);
      out.schema.AddColumn(group_by_[g], c.type, c.nullable);
    }
    for (const auto& a : aggs_) {
      DataType t = a.func == AggFunc::kCount ? DataType::kInt64
                   : a.func == AggFunc::kAvg ? DataType::kDouble
                                             : DataType::kNull;
      out.schema.AddColumn(a.output_name, t);
    }
    for (const auto& [key_str, st] : groups) {
      Row row = st.key;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        switch (aggs_[a].func) {
          case AggFunc::kCount:
            row.push_back(Value::Int(st.count[a]));
            break;
          case AggFunc::kSum:
            row.push_back(st.count[a] == 0 ? Value::Null()
                          : st.all_int[a]
                              ? Value::Int(static_cast<int64_t>(st.sum[a]))
                              : Value::Double(st.sum[a]));
            break;
          case AggFunc::kAvg:
            row.push_back(st.count[a] == 0
                              ? Value::Null()
                              : Value::Double(st.sum[a] / st.count[a]));
            break;
          case AggFunc::kMin:
            row.push_back(st.min_v[a]);
            break;
          case AggFunc::kMax:
            row.push_back(st.max_v[a]);
            break;
        }
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  std::string ToString() const override {
    return StrFormat("Aggregate(group=[%s], %zu aggs)",
                     StrJoin(group_by_, ",").c_str(), aggs_.size());
  }

 private:
  PlanPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggregateItem> aggs_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    ctx->rows_processed += in.rows.size();
    std::vector<size_t> idx;
    std::vector<bool> asc;
    for (const auto& k : keys_) {
      DIP_ASSIGN_OR_RETURN(size_t i, in.schema.RequireIndexOf(k.column));
      idx.push_back(i);
      asc.push_back(k.ascending);
    }
    std::stable_sort(in.rows.begin(), in.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < idx.size(); ++k) {
                         int c = a[idx[k]].Compare(b[idx[k]]);
                         if (c != 0) return asc[k] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    return in;
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& k : keys_) {
      parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
    }
    return "Sort(" + StrJoin(parts, ", ") + ")";
  }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  Result<RowSet> Execute(ExecContext* ctx) const override {
    DIP_ASSIGN_OR_RETURN(RowSet in, child_->Execute(ctx));
    ctx->operator_invocations++;
    if (in.rows.size() > limit_) in.rows.resize(limit_);
    ctx->rows_processed += in.rows.size();
    return in;
  }
  std::string ToString() const override {
    return StrFormat("Limit(%zu)", limit_);
  }

 private:
  PlanPtr child_;
  size_t limit_;
};

}  // namespace

PlanPtr ScanTable(const Table* table) {
  return std::make_shared<ScanTableNode>(table);
}
PlanPtr IndexRangeScan(const Table* table, std::string index_name, Value lo,
                       Value hi) {
  return std::make_shared<IndexRangeScanNode>(table, std::move(index_name),
                                              std::move(lo), std::move(hi));
}
PlanPtr ScanValues(RowSet rows) {
  return std::make_shared<ScanValuesNode>(std::move(rows));
}
PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(child), std::move(predicate));
}
PlanPtr Project(PlanPtr child, std::vector<ProjectionItem> items) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(items));
}
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys));
}
PlanPtr UnionDistinct(std::vector<PlanPtr> children,
                      std::vector<std::string> key_columns) {
  return std::make_shared<UnionDistinctNode>(std::move(children),
                                             std::move(key_columns));
}
PlanPtr Distinct(PlanPtr child) {
  std::vector<PlanPtr> children{std::move(child)};
  return UnionDistinct(std::move(children), {});
}
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates) {
  return std::make_shared<AggregateNode>(std::move(child), std::move(group_by),
                                         std::move(aggregates));
}
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}
PlanPtr Limit(PlanPtr child, size_t limit) {
  return std::make_shared<LimitNode>(std::move(child), limit);
}

Result<size_t> InsertInto(Table* table, const RowSet& rows) {
  size_t inserted = 0;
  for (const auto& row : rows.rows) {
    Status st = table->Insert(row);
    if (st.ok()) {
      ++inserted;
    } else if (st.code() != StatusCode::kAlreadyExists) {
      return st;
    }
  }
  return inserted;
}

Result<size_t> UpsertInto(Table* table, const RowSet& rows) {
  size_t written = 0;
  for (const auto& row : rows.rows) {
    DIP_RETURN_NOT_OK(table->InsertOrReplace(row));
    ++written;
  }
  return written;
}

}  // namespace dipbench
