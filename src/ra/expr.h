#ifndef DIPBENCH_RA_EXPR_H_
#define DIPBENCH_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/types/column.h"
#include "src/types/schema.h"
#include "src/types/value.h"

namespace dipbench {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A batch of rows by reference — the unit of vectorized evaluation. The
/// pointees typically live in table storage or an upstream operator's batch
/// buffer, so no row is copied just to be evaluated.
using RowRefs = std::vector<const Row*>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kCompare,     // = != < <= > >=
  kLogical,     // AND OR NOT
  kArithmetic,  // + - * /  (numeric) and string concatenation for +
  kIsNull,
  kInList,
  kFunction,  // named scalar function
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithmeticOp { kAdd, kSub, kMul, kDiv, kMod };

/// An immutable expression tree evaluated against (row, schema) pairs.
/// Column references are by name and resolved per evaluation against the
/// input schema — simple and adequate for the table widths this engine uses.
///
/// Supported scalar functions (paper needs: time-dimension extraction,
/// simple renaming/derivation in projections and validations):
///   year(d), month(d), day(d)     — date component extraction
///   lower(s), upper(s)            — ASCII casing
///   concat(a, b, ...)             — string concatenation
///   substr(s, pos, len)           — 0-based substring
///   length(s)                     — string length
///   abs(x)                        — numeric absolute value
///   coalesce(a, b, ...)           — first non-NULL
///   decode(x, k1, v1, ..., [dft]) — Oracle-style value mapping
///   hash_mod(x, m)                — deterministic bucketing
class Expr {
 public:
  virtual ~Expr() = default;

  virtual ExprKind kind() const = 0;

  /// Evaluates against one row. Type errors surface as Status.
  virtual Result<Value> Eval(const Row& row, const Schema& schema) const = 0;

  /// Evaluates against a whole batch of rows at once: `*out` is resized to
  /// `rows.size()` and out[i] receives the value for *rows[i]. The base
  /// implementation loops the scalar Eval; concrete nodes override it with
  /// tight loops that resolve column indices once per batch and skip the
  /// per-row virtual dispatch into their children. Semantics are identical
  /// to row-at-a-time evaluation (AND/OR short-circuiting included); only
  /// the order in which per-row type errors are discovered may differ.
  virtual Status EvalBatch(const RowRefs& rows, const Schema& schema,
                           std::vector<Value>* out) const;

  /// Evaluates this expression as a PREDICATE over a columnar batch:
  /// `*out` receives the ascending physical indices of the batch's rows for
  /// which the expression is a non-null true (exactly the rows FilterCursor
  /// keeps). The base implementation materializes each row and calls Eval;
  /// comparisons, logical connectives, and IS NULL override it with
  /// column-kernel loops over the typed arrays (dictionary codes for
  /// strings). Semantics match row evaluation bit for bit — numeric
  /// comparisons go through the same double conversion Value::Compare uses.
  virtual Status EvalSelection(const ColumnBatch& batch, const Schema& schema,
                               std::vector<uint32_t>* out) const;

  virtual std::string ToString() const = 0;
};

/// Constructors (free functions keep call sites compact).
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Col(std::string name);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);
ExprPtr Arith(ArithmeticOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);
ExprPtr IsNull(ExprPtr operand);
ExprPtr InList(ExprPtr needle, std::vector<Value> haystack);
ExprPtr Func(std::string name, std::vector<ExprPtr> args);

/// Non-null iff `e` is a bare column reference; points at its column name.
/// Lets operators (projection) read referenced columns in place instead of
/// routing them through a value buffer.
const std::string* ColumnRefName(const Expr& e);

}  // namespace dipbench

#endif  // DIPBENCH_RA_EXPR_H_
