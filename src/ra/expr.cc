#include "src/ra/expr.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace dipbench {

Status Expr::EvalBatch(const RowRefs& rows, const Schema& schema,
                       std::vector<Value>* out) const {
  out->clear();
  out->reserve(rows.size());
  for (const Row* row : rows) {
    DIP_ASSIGN_OR_RETURN(Value v, Eval(*row, schema));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status Expr::EvalSelection(const ColumnBatch& batch, const Schema& schema,
                           std::vector<uint32_t>* out) const {
  // Fallback for expressions without a column kernel: materialize each row
  // and keep the non-null trues, exactly like the row-mode filter.
  out->clear();
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    Row row = MaterializeColumnRow(batch, i);
    DIP_ASSIGN_OR_RETURN(Value v, Eval(row, schema));
    if (!v.is_null() && v.type() == DataType::kBool && v.AsBool()) {
      out->push_back(batch.phys(i));
    }
  }
  return Status::OK();
}

namespace {

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  const Value& value() const { return value_; }
  Result<Value> Eval(const Row&, const Schema&) const override {
    return value_;
  }
  Status EvalBatch(const RowRefs& rows, const Schema&,
                   std::vector<Value>* out) const override {
    out->assign(rows.size(), value_);
    return Status::OK();
  }
  std::string ToString() const override {
    return value_.type() == DataType::kString ? "'" + value_.ToString() + "'"
                                              : value_.ToString();
  }

 private:
  Value value_;
};

class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  const std::string& name() const { return name_; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndexOf(name_));
    if (idx >= row.size()) return Status::Internal("row narrower than schema");
    return row[idx];
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    // The payoff of batching: one name resolution for the whole chunk.
    DIP_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndexOf(name_));
    out->clear();
    out->reserve(rows.size());
    for (const Row* row : rows) {
      if (idx >= row->size()) {
        return Status::Internal("row narrower than schema");
      }
      out->push_back((*row)[idx]);
    }
    return Status::OK();
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

/// One input of a vectorized evaluation, bound once per batch. Bare column
/// references are read in place (no per-row Value copies), literals are
/// evaluated once, and everything else falls back to a per-row buffer.
class Operand {
 public:
  Status Bind(const Expr& e, const RowRefs& rows, const Schema& schema) {
    idx_ = kNotColumn;
    constant_ = nullptr;
    switch (e.kind()) {
      case ExprKind::kColumnRef: {
        DIP_ASSIGN_OR_RETURN(
            size_t idx,
            schema.RequireIndexOf(static_cast<const ColumnRefExpr&>(e).name()));
        for (const Row* row : rows) {
          if (idx >= row->size()) {
            return Status::Internal("row narrower than schema");
          }
        }
        idx_ = idx;
        return Status::OK();
      }
      case ExprKind::kLiteral:
        constant_ = &static_cast<const LiteralExpr&>(e).value();
        return Status::OK();
      default:
        return e.EvalBatch(rows, schema, &buf_);
    }
  }

  const Value& at(const RowRefs& rows, size_t i) const {
    if (idx_ != kNotColumn) return (*rows[i])[idx_];
    if (constant_ != nullptr) return *constant_;
    return buf_[i];
  }

 private:
  static constexpr size_t kNotColumn = static_cast<size_t>(-1);
  size_t idx_ = kNotColumn;
  const Value* constant_ = nullptr;
  std::vector<Value> buf_;
};

/// Binds one comparison operand for columnar evaluation: a bare column
/// reference resolves to the batch column (*lit stays NULL), a literal to a
/// constant (*col stays nullptr). Any other expression shape returns false
/// and the caller falls back to row-at-a-time evaluation.
bool BindColumnOperand(const Expr& e, const ColumnBatch& batch,
                       const Schema& schema, const ColumnVector** col,
                       Value* lit) {
  *col = nullptr;
  *lit = Value::Null();
  if (e.kind() == ExprKind::kLiteral) {
    *lit = static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() != ExprKind::kColumnRef) return false;
  Result<size_t> idx =
      schema.RequireIndexOf(static_cast<const ColumnRefExpr&>(e).name());
  if (!idx.ok() || *idx >= batch.columns.size()) return false;
  *col = batch.columns[*idx].get();
  return true;
}

bool IsNumericRep(const ColumnVector* c) {
  return c != nullptr && (c->rep() == ColumnVector::Rep::kInt ||
                          c->rep() == ColumnVector::Rep::kDouble);
}

bool IsNumericValue(const Value& v) {
  switch (v.type()) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return true;
    default:
      return false;
  }
}

/// a OP b == b MirrorOp(OP) a — used to put the column on the left.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // =, != are symmetric
  }
}

bool KeepCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// The cell as a double; valid only for numeric representations. Matches
/// Value::Compare, which converts every numeric-family pair to doubles.
double NumAt(const ColumnVector& c, uint32_t p) {
  return c.rep() == ColumnVector::Rep::kInt ? static_cast<double>(c.ints()[p])
                                            : c.doubles()[p];
}

template <typename Pred>
void SelectNumeric(const ColumnBatch& batch, const ColumnVector& col,
                   Pred pred, std::vector<uint32_t>* out) {
  const size_t n = batch.size();
  const bool nulls = col.has_nulls();
  if (col.rep() == ColumnVector::Rep::kInt) {
    const int64_t* v = col.ints();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = batch.phys(i);
      if (nulls && col.IsNull(p)) continue;
      if (pred(static_cast<double>(v[p]))) out->push_back(p);
    }
  } else {
    const double* v = col.doubles();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = batch.phys(i);
      if (nulls && col.IsNull(p)) continue;
      if (pred(v[p])) out->push_back(p);
    }
  }
}

/// col OP literal over a numeric column: one op-specialized tight loop per
/// comparison operator (the hot filter kernel).
void RunNumericLitKernel(const ColumnBatch& batch, const ColumnVector& col,
                         CompareOp op, double d, std::vector<uint32_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      SelectNumeric(batch, col, [d](double x) { return x == d; }, out);
      break;
    case CompareOp::kNe:
      SelectNumeric(batch, col, [d](double x) { return x != d; }, out);
      break;
    case CompareOp::kLt:
      SelectNumeric(batch, col, [d](double x) { return x < d; }, out);
      break;
    case CompareOp::kLe:
      SelectNumeric(batch, col, [d](double x) { return x <= d; }, out);
      break;
    case CompareOp::kGt:
      SelectNumeric(batch, col, [d](double x) { return x > d; }, out);
      break;
    case CompareOp::kGe:
      SelectNumeric(batch, col, [d](double x) { return x >= d; }, out);
      break;
  }
}

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kCompare; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    DIP_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    return Apply(a, b);
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    Operand lhs, rhs;
    DIP_RETURN_NOT_OK(lhs.Bind(*lhs_, rows, schema));
    DIP_RETURN_NOT_OK(rhs.Bind(*rhs_, rows, schema));
    out->clear();
    out->reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      DIP_ASSIGN_OR_RETURN(Value v, Apply(lhs.at(rows, i), rhs.at(rows, i)));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  Status EvalSelection(const ColumnBatch& batch, const Schema& schema,
                       std::vector<uint32_t>* out) const override {
    const ColumnVector* ca = nullptr;
    const ColumnVector* cb = nullptr;
    Value la, lb;
    if (!BindColumnOperand(*lhs_, batch, schema, &ca, &la) ||
        !BindColumnOperand(*rhs_, batch, schema, &cb, &lb)) {
      return Expr::EvalSelection(batch, schema, out);
    }
    out->clear();
    const size_t n = batch.size();
    out->reserve(n);
    // Numeric column vs numeric literal (either orientation).
    if (IsNumericRep(ca) && cb == nullptr && IsNumericValue(lb)) {
      RunNumericLitKernel(batch, *ca, op_, *lb.ToNumeric(), out);
      return Status::OK();
    }
    if (IsNumericRep(cb) && ca == nullptr && IsNumericValue(la)) {
      RunNumericLitKernel(batch, *cb, MirrorOp(op_), *la.ToNumeric(), out);
      return Status::OK();
    }
    // Numeric column vs numeric column.
    if (IsNumericRep(ca) && IsNumericRep(cb)) {
      const bool nulls = ca->has_nulls() || cb->has_nulls();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t p = batch.phys(i);
        if (nulls && (ca->IsNull(p) || cb->IsNull(p))) continue;
        const double x = NumAt(*ca, p);
        const double y = NumAt(*cb, p);
        if (KeepCmp(op_, x < y ? -1 : (x > y ? 1 : 0))) out->push_back(p);
      }
      return Status::OK();
    }
    // Dictionary column vs string literal: one string compare per DISTINCT
    // value, then a code-indexed table lookup per row.
    const ColumnVector* dcol = nullptr;
    CompareOp dop = op_;
    const Value* dlit = nullptr;
    if (ca != nullptr && ca->rep() == ColumnVector::Rep::kDict &&
        cb == nullptr && lb.type() == DataType::kString) {
      dcol = ca;
      dlit = &lb;
    } else if (cb != nullptr && cb->rep() == ColumnVector::Rep::kDict &&
               ca == nullptr && la.type() == DataType::kString) {
      dcol = cb;
      dop = MirrorOp(op_);
      dlit = &la;
    }
    if (dcol != nullptr) {
      const std::string& s = dlit->AsString();
      const auto& dict = dcol->dict();
      std::vector<uint8_t> keep(dict.size());
      for (size_t c = 0; c < dict.size(); ++c) {
        keep[c] = KeepCmp(dop, dict[c].compare(s)) ? 1 : 0;
      }
      const int32_t* codes = dcol->codes();
      const bool nulls = dcol->has_nulls();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t p = batch.phys(i);
        if (nulls && dcol->IsNull(p)) continue;
        if (keep[codes[p]] != 0) out->push_back(p);
      }
      return Status::OK();
    }
    // Generic columnar loop (mixed/degraded representations, heterogeneous
    // operand types): same Apply as the row path, cell at a time.
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = batch.phys(i);
      const Value a = ca != nullptr ? ca->GetValue(p) : la;
      const Value b = cb != nullptr ? cb->GetValue(p) : lb;
      DIP_ASSIGN_OR_RETURN(Value v, Apply(a, b));
      if (v.type() == DataType::kBool && v.AsBool()) out->push_back(p);
    }
    return Status::OK();
  }
  std::string ToString() const override {
    static const char* kNames[] = {"=", "!=", "<", "<=", ">", ">="};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] + " " +
           rhs_->ToString() + ")";
  }

 private:
  Result<Value> Apply(const Value& a, const Value& b) const {
    // SQL-ish: comparisons against NULL are false (except handled by IsNull).
    if (a.is_null() || b.is_null()) return Value::Bool(false);
    int c = a.Compare(b);
    switch (op_) {
      case CompareOp::kEq:
        return Value::Bool(c == 0);
      case CompareOp::kNe:
        return Value::Bool(c != 0);
      case CompareOp::kLt:
        return Value::Bool(c < 0);
      case CompareOp::kLe:
        return Value::Bool(c <= 0);
      case CompareOp::kGt:
        return Value::Bool(c > 0);
      case CompareOp::kGe:
        return Value::Bool(c >= 0);
    }
    return Status::Internal("bad compare op");
  }

  CompareOp op_;
  ExprPtr lhs_, rhs_;
};

class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kLogical; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    bool av = !a.is_null() && a.type() == DataType::kBool && a.AsBool();
    if (op_ == LogicalOp::kNot) return Value::Bool(!av);
    if (op_ == LogicalOp::kAnd && !av) return Value::Bool(false);
    if (op_ == LogicalOp::kOr && av) return Value::Bool(true);
    DIP_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    bool bv = !b.is_null() && b.type() == DataType::kBool && b.AsBool();
    return Value::Bool(bv);
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    Operand lhs;
    DIP_RETURN_NOT_OK(lhs.Bind(*lhs_, rows, schema));
    out->clear();
    out->reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value& a = lhs.at(rows, i);
      bool av = !a.is_null() && a.type() == DataType::kBool && a.AsBool();
      if (op_ == LogicalOp::kNot) {
        out->push_back(Value::Bool(!av));
        continue;
      }
      if (op_ == LogicalOp::kAnd && !av) {
        out->push_back(Value::Bool(false));
        continue;
      }
      if (op_ == LogicalOp::kOr && av) {
        out->push_back(Value::Bool(true));
        continue;
      }
      // Short-circuit semantics preserved: the right side is evaluated only
      // for the rows the scalar path would evaluate it for (a batched rhs
      // could surface eval errors on rows the scalar path never touches).
      DIP_ASSIGN_OR_RETURN(Value b, rhs_->Eval(*rows[i], schema));
      out->push_back(Value::Bool(!b.is_null() &&
                                 b.type() == DataType::kBool && b.AsBool()));
    }
    return Status::OK();
  }
  Status EvalSelection(const ColumnBatch& batch, const Schema& schema,
                       std::vector<uint32_t>* out) const override {
    // EvalSelection already folds "null / non-bool counts as false" into the
    // kept set, so the connectives reduce to selection-vector algebra:
    //   NOT — complement, AND — re-filter the kept rows, OR — union with
    //   rhs evaluated only on the complement (preserving the scalar path's
    //   short-circuit: rhs never sees a row the row path would skip).
    std::vector<uint32_t> s1;
    DIP_RETURN_NOT_OK(lhs_->EvalSelection(batch, schema, &s1));
    const size_t n = batch.size();
    if (op_ == LogicalOp::kNot) {
      out->clear();
      out->reserve(n - s1.size());
      size_t j = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t p = batch.phys(i);
        if (j < s1.size() && s1[j] == p) {
          ++j;
          continue;
        }
        out->push_back(p);
      }
      return Status::OK();
    }
    if (op_ == LogicalOp::kAnd) {
      ColumnBatch sub;
      sub.columns = batch.columns;
      sub.has_sel = true;
      sub.sel = std::move(s1);
      return rhs_->EvalSelection(sub, schema, out);
    }
    // OR
    ColumnBatch sub;
    sub.columns = batch.columns;
    sub.has_sel = true;
    sub.sel.reserve(n - s1.size());
    size_t j = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = batch.phys(i);
      if (j < s1.size() && s1[j] == p) {
        ++j;
        continue;
      }
      sub.sel.push_back(p);
    }
    std::vector<uint32_t> s2;
    DIP_RETURN_NOT_OK(rhs_->EvalSelection(sub, schema, &s2));
    out->clear();
    out->reserve(s1.size() + s2.size());
    std::merge(s1.begin(), s1.end(), s2.begin(), s2.end(),
               std::back_inserter(*out));
    return Status::OK();
  }
  std::string ToString() const override {
    if (op_ == LogicalOp::kNot) return "NOT " + lhs_->ToString();
    return "(" + lhs_->ToString() +
           (op_ == LogicalOp::kAnd ? " AND " : " OR ") + rhs_->ToString() +
           ")";
  }

 private:
  LogicalOp op_;
  ExprPtr lhs_, rhs_;
};

class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithmeticOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kArithmetic; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    DIP_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    return Apply(a, b);
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    Operand lhs, rhs;
    DIP_RETURN_NOT_OK(lhs.Bind(*lhs_, rows, schema));
    DIP_RETURN_NOT_OK(rhs.Bind(*rhs_, rows, schema));
    out->clear();
    out->reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      DIP_ASSIGN_OR_RETURN(Value v, Apply(lhs.at(rows, i), rhs.at(rows, i)));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  std::string ToString() const override {
    static const char* kNames[] = {"+", "-", "*", "/", "%"};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] + " " +
           rhs_->ToString() + ")";
  }

 private:
  Result<Value> Apply(const Value& a, const Value& b) const {
    if (a.is_null() || b.is_null()) return Value::Null();
    // String + string concatenates.
    if (op_ == ArithmeticOp::kAdd && a.type() == DataType::kString &&
        b.type() == DataType::kString) {
      return Value::String(a.AsString() + b.AsString());
    }
    // Integer arithmetic stays integral.
    if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
      int64_t x = a.AsInt(), y = b.AsInt();
      switch (op_) {
        case ArithmeticOp::kAdd:
          return Value::Int(x + y);
        case ArithmeticOp::kSub:
          return Value::Int(x - y);
        case ArithmeticOp::kMul:
          return Value::Int(x * y);
        case ArithmeticOp::kDiv:
          if (y == 0) return Status::InvalidArgument("integer division by 0");
          return Value::Int(x / y);
        case ArithmeticOp::kMod:
          if (y == 0) return Status::InvalidArgument("modulo by 0");
          return Value::Int(x % y);
      }
    }
    DIP_ASSIGN_OR_RETURN(double x, a.ToNumeric());
    DIP_ASSIGN_OR_RETURN(double y, b.ToNumeric());
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value::Double(x + y);
      case ArithmeticOp::kSub:
        return Value::Double(x - y);
      case ArithmeticOp::kMul:
        return Value::Double(x * y);
      case ArithmeticOp::kDiv:
        if (y == 0.0) return Status::InvalidArgument("division by 0");
        return Value::Double(x / y);
      case ArithmeticOp::kMod:
        if (y == 0.0) return Status::InvalidArgument("modulo by 0");
        return Value::Double(std::fmod(x, y));
    }
    return Status::Internal("bad arithmetic op");
  }

  ArithmeticOp op_;
  ExprPtr lhs_, rhs_;
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  ExprKind kind() const override { return ExprKind::kIsNull; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
    return Value::Bool(v.is_null());
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    Operand operand;
    DIP_RETURN_NOT_OK(operand.Bind(*operand_, rows, schema));
    out->clear();
    out->reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      out->push_back(Value::Bool(operand.at(rows, i).is_null()));
    }
    return Status::OK();
  }
  Status EvalSelection(const ColumnBatch& batch, const Schema& schema,
                       std::vector<uint32_t>* out) const override {
    const std::string* name = ColumnRefName(*operand_);
    if (name == nullptr) return Expr::EvalSelection(batch, schema, out);
    Result<size_t> idx = schema.RequireIndexOf(*name);
    if (!idx.ok() || *idx >= batch.columns.size()) {
      return Expr::EvalSelection(batch, schema, out);
    }
    const ColumnVector& col = *batch.columns[*idx];
    out->clear();
    if (!col.has_nulls()) return Status::OK();
    const size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = batch.phys(i);
      if (col.IsNull(p)) out->push_back(p);
    }
    return Status::OK();
  }
  std::string ToString() const override {
    return operand_->ToString() + " IS NULL";
  }

 private:
  ExprPtr operand_;
};

class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr needle, std::vector<Value> haystack)
      : needle_(std::move(needle)), haystack_(std::move(haystack)) {}
  ExprKind kind() const override { return ExprKind::kInList; }
  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    DIP_ASSIGN_OR_RETURN(Value v, needle_->Eval(row, schema));
    if (v.is_null()) return Value::Bool(false);
    for (const auto& h : haystack_) {
      if (v.Compare(h) == 0) return Value::Bool(true);
    }
    return Value::Bool(false);
  }
  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    Operand needle;
    DIP_RETURN_NOT_OK(needle.Bind(*needle_, rows, schema));
    out->clear();
    out->reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value& v = needle.at(rows, i);
      bool found = false;
      if (!v.is_null()) {
        for (const auto& h : haystack_) {
          if (v.Compare(h) == 0) {
            found = true;
            break;
          }
        }
      }
      out->push_back(Value::Bool(found));
    }
    return Status::OK();
  }
  std::string ToString() const override {
    std::vector<std::string> items;
    for (const auto& h : haystack_) items.push_back(h.ToString());
    return needle_->ToString() + " IN (" + StrJoin(items, ", ") + ")";
  }

 private:
  ExprPtr needle_;
  std::vector<Value> haystack_;
};

class FunctionExpr : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args)
      : name_(StrLower(name)), args_(std::move(args)) {}
  ExprKind kind() const override { return ExprKind::kFunction; }

  Result<Value> Eval(const Row& row, const Schema& schema) const override {
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const auto& a : args_) {
      DIP_ASSIGN_OR_RETURN(Value v, a->Eval(row, schema));
      vals.push_back(std::move(v));
    }
    return Apply(vals);
  }

  Status EvalBatch(const RowRefs& rows, const Schema& schema,
                   std::vector<Value>* out) const override {
    // Evaluate each argument once over the whole batch, then assemble the
    // per-row argument vector. Costs one transpose but saves the per-row
    // recursive dispatch into the argument subtrees.
    std::vector<std::vector<Value>> cols(args_.size());
    for (size_t a = 0; a < args_.size(); ++a) {
      DIP_RETURN_NOT_OK(args_[a]->EvalBatch(rows, schema, &cols[a]));
    }
    out->clear();
    out->reserve(rows.size());
    std::vector<Value> vals(args_.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t a = 0; a < args_.size(); ++a) vals[a] = cols[a][i];
      DIP_ASSIGN_OR_RETURN(Value v, Apply(vals));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& a : args_) parts.push_back(a->ToString());
    return name_ + "(" + StrJoin(parts, ", ") + ")";
  }

 private:
  Result<Value> Apply(const std::vector<Value>& vals) const {
    auto require_arity = [&](size_t n) -> Status {
      if (vals.size() != n) {
        return Status::InvalidArgument(name_ + " expects " +
                                       std::to_string(n) + " args");
      }
      return Status::OK();
    };
    if (name_ == "year" || name_ == "month" || name_ == "day") {
      DIP_RETURN_NOT_OK(require_arity(1));
      if (vals[0].is_null()) return Value::Null();
      Result<int64_t> part = name_ == "year"    ? vals[0].DateYear()
                             : name_ == "month" ? vals[0].DateMonth()
                                                : vals[0].DateDay();
      if (!part.ok()) return part.status();
      return Value::Int(*part);
    }
    if (name_ == "lower" || name_ == "upper") {
      DIP_RETURN_NOT_OK(require_arity(1));
      if (vals[0].is_null()) return Value::Null();
      if (vals[0].type() != DataType::kString) {
        return Status::TypeMismatch(name_ + " expects string");
      }
      std::string s = vals[0].AsString();
      for (char& c : s) {
        if (name_ == "lower" && c >= 'A' && c <= 'Z') c += 'a' - 'A';
        if (name_ == "upper" && c >= 'a' && c <= 'z') c -= 'a' - 'A';
      }
      return Value::String(std::move(s));
    }
    if (name_ == "concat") {
      std::string out;
      for (const auto& v : vals) out += v.ToString();
      return Value::String(std::move(out));
    }
    if (name_ == "substr") {
      DIP_RETURN_NOT_OK(require_arity(3));
      if (vals[0].is_null()) return Value::Null();
      if (vals[0].type() != DataType::kString) {
        return Status::TypeMismatch("substr expects string");
      }
      DIP_ASSIGN_OR_RETURN(int64_t pos, vals[1].ToInt());
      DIP_ASSIGN_OR_RETURN(int64_t len, vals[2].ToInt());
      const std::string& s = vals[0].AsString();
      if (pos < 0 || static_cast<size_t>(pos) >= s.size() || len < 0) {
        return Value::String("");
      }
      return Value::String(s.substr(pos, len));
    }
    if (name_ == "length") {
      DIP_RETURN_NOT_OK(require_arity(1));
      if (vals[0].is_null()) return Value::Null();
      if (vals[0].type() != DataType::kString) {
        return Status::TypeMismatch("length expects string");
      }
      return Value::Int(static_cast<int64_t>(vals[0].AsString().size()));
    }
    if (name_ == "abs") {
      DIP_RETURN_NOT_OK(require_arity(1));
      if (vals[0].is_null()) return Value::Null();
      if (vals[0].type() == DataType::kInt64) {
        return Value::Int(std::llabs(vals[0].AsInt()));
      }
      DIP_ASSIGN_OR_RETURN(double d, vals[0].ToNumeric());
      return Value::Double(std::fabs(d));
    }
    if (name_ == "coalesce") {
      for (const auto& v : vals) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    if (name_ == "decode") {
      // decode(x, k1, v1, k2, v2, ..., [default]) — Oracle-style value map.
      if (vals.size() < 3) {
        return Status::InvalidArgument("decode needs at least 3 args");
      }
      size_t i = 1;
      for (; i + 1 < vals.size(); i += 2) {
        if (vals[0].Compare(vals[i]) == 0) return vals[i + 1];
      }
      // Odd remaining argument is the default.
      if (i < vals.size()) return vals[i];
      return Value::Null();
    }
    if (name_ == "hash_mod") {
      DIP_RETURN_NOT_OK(require_arity(2));
      DIP_ASSIGN_OR_RETURN(int64_t m, vals[1].ToInt());
      if (m <= 0) return Status::InvalidArgument("hash_mod modulus <= 0");
      return Value::Int(static_cast<int64_t>(vals[0].Hash() % m));
    }
    return Status::NotFound("unknown function " + name_);
  }

  std::string name_;
  std::vector<ExprPtr> args_;
};

}  // namespace

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr Lit(double v) { return Lit(Value::Double(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::String(v)); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kNe, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(operand),
                                       nullptr);
}
ExprPtr Arith(ArithmeticOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithmeticExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithmeticOp::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithmeticOp::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithmeticOp::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithmeticOp::kDiv, l, r); }
ExprPtr IsNull(ExprPtr operand) {
  return std::make_shared<IsNullExpr>(std::move(operand));
}
ExprPtr InList(ExprPtr needle, std::vector<Value> haystack) {
  return std::make_shared<InListExpr>(std::move(needle), std::move(haystack));
}
ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionExpr>(std::move(name), std::move(args));
}

const std::string* ColumnRefName(const Expr& e) {
  if (e.kind() != ExprKind::kColumnRef) return nullptr;
  return &static_cast<const ColumnRefExpr&>(e).name();
}

}  // namespace dipbench
