#include "src/net/file_endpoint.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "src/xml/bridge.h"
#include "src/xml/parser.h"

namespace dipbench {
namespace net {

Result<std::string> FileStore::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no file " + name);
  return it->second;
}

Status FileStore::Remove(const std::string& name) {
  if (files_.erase(name) == 0) return Status::NotFound("no file " + name);
  return Status::OK();
}

std::vector<std::string> FileStore::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

Status FileStore::SaveToDisk(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create " + directory + ": " +
                            ec.message());
  }
  for (const auto& [name, content] : files_) {
    const std::string path = directory + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + path + " for write");
    out << content;
    // A full disk or a write error leaves the stream in a fail state only
    // after flush — check it, or a truncated export silently reports OK.
    out.flush();
    if (!out.good()) {
      return Status::Internal("write failed for " + path);
    }
    out.close();
    if (out.fail()) {
      return Status::Internal("close failed for " + path);
    }
  }
  return Status::OK();
}

Result<std::string> FileStore::ClaimUniqueDir(const std::string& base_dir,
                                              const std::string& prefix) {
  // One counter per process: two concurrent runs (threads) can never claim
  // the same name, and the pid component keeps parallel ctest processes
  // apart even when they share a base directory.
  static std::atomic<uint64_t> g_next{0};
  std::error_code ec;
  std::filesystem::create_directories(base_dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + base_dir + ": " + ec.message());
  }
  const uint64_t pid =
#ifdef _WIN32
      0;
#else
      static_cast<uint64_t>(::getpid());
#endif
  for (int tries = 0; tries < 1024; ++tries) {
    uint64_t n = g_next.fetch_add(1, std::memory_order_relaxed);
    std::string dir = base_dir + "/" + prefix + "-" + std::to_string(pid) +
                      "-" + std::to_string(n);
    // create_directory (single level) returns false without error when the
    // directory already exists — claimed by someone else, try the next id.
    bool created = std::filesystem::create_directory(dir, ec);
    if (ec) {
      return Status::Internal("cannot create " + dir + ": " + ec.message());
    }
    if (created) return dir;
  }
  return Status::Internal("cannot claim a unique directory under " + base_dir);
}

Result<std::string> FileStore::SaveToUniqueDir(const std::string& base_dir,
                                               const std::string& prefix) const {
  DIP_ASSIGN_OR_RETURN(std::string dir, ClaimUniqueDir(base_dir, prefix));
  DIP_RETURN_NOT_OK(SaveToDisk(dir));
  return dir;
}

Status FileStore::LoadFromDisk(const std::string& directory) {
  std::error_code ec;
  auto iter = std::filesystem::directory_iterator(directory, ec);
  if (ec) {
    return Status::NotFound("cannot read " + directory + ": " + ec.message());
  }
  for (const auto& entry : iter) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path());
    std::ostringstream content;
    content << in.rdbuf();
    files_[entry.path().filename().string()] = content.str();
  }
  return Status::OK();
}

XmlFileEndpoint::XmlFileEndpoint(std::string name, FileStore* store,
                                 Channel channel, double per_node_ms)
    : Endpoint(std::move(name), /*db=*/nullptr, channel, /*per_row_ms=*/0.0),
      store_(store),
      per_node_ms_(per_node_ms) {}

Status XmlFileEndpoint::RegisterFileQuery(const std::string& op,
                                          std::string file_name, Schema schema,
                                          std::string row_name) {
  if (file_queries_.count(op) > 0) {
    return Status::AlreadyExists("file query " + op + " on " + name_);
  }
  file_queries_.emplace(op, FileQuery{std::move(file_name), std::move(schema),
                                      std::move(row_name)});
  return Status::OK();
}

Status XmlFileEndpoint::RegisterFileUpdate(const std::string& op,
                                           std::string file_name,
                                           std::string root_name,
                                           std::string row_name, bool append) {
  if (file_updates_.count(op) > 0) {
    return Status::AlreadyExists("file update " + op + " on " + name_);
  }
  file_updates_.emplace(op, FileUpdate{std::move(file_name),
                                       std::move(root_name),
                                       std::move(row_name), append});
  return Status::OK();
}

Result<RowSet> XmlFileEndpoint::DoQuery(const std::string& op,
                                      const std::vector<Value>& params,
                                      NetStats* stats) {
  (void)params;
  auto it = file_queries_.find(op);
  if (it == file_queries_.end()) {
    return Status::NotFound("no file query " + op + " on " + name_);
  }
  const FileQuery& q = it->second;
  DIP_ASSIGN_OR_RETURN(std::string text, store_->Read(q.file_name));
  DIP_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::ParseXml(text));
  DIP_ASSIGN_OR_RETURN(RowSet rows,
                       xml::XmlToRowSet(*doc, q.schema, q.row_name));
  Charge(64, text.size(), rows.size(), stats);
  if (stats != nullptr) {
    stats->comm_ms += per_node_ms_ * static_cast<double>(doc->SubtreeSize());
  }
  return rows;
}

Result<size_t> XmlFileEndpoint::DoUpdate(const std::string& op,
                                       const RowSet& rows, NetStats* stats) {
  auto it = file_updates_.find(op);
  if (it == file_updates_.end()) {
    return Status::NotFound("no file update " + op + " on " + name_);
  }
  const FileUpdate& u = it->second;
  xml::NodePtr doc;
  if (u.append && store_->Exists(u.file_name)) {
    DIP_ASSIGN_OR_RETURN(std::string existing, store_->Read(u.file_name));
    DIP_ASSIGN_OR_RETURN(doc, xml::ParseXml(existing));
  } else {
    doc = std::make_unique<xml::Node>(u.root_name);
  }
  for (const Row& row : rows.rows) {
    doc->AddChild(xml::RowToXml(row, rows.schema, u.row_name));
  }
  std::string text = xml::WriteXml(*doc);
  store_->Write(u.file_name, text);
  Charge(text.size(), 32, rows.size(), stats);
  if (stats != nullptr) {
    stats->comm_ms += per_node_ms_ * static_cast<double>(doc->SubtreeSize());
  }
  return rows.size();
}

Status XmlFileEndpoint::DoSendMessage(const std::string&, const xml::Node&,
                                    NetStats*) {
  return Status::Unimplemented("flat-file systems accept no messages");
}

Status XmlFileEndpoint::DoCallProcedure(const std::string&,
                                      const std::vector<Value>&, NetStats*) {
  return Status::Unimplemented("flat-file systems have no procedures");
}

}  // namespace net
}  // namespace dipbench
