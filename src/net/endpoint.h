#ifndef DIPBENCH_NET_ENDPOINT_H_
#define DIPBENCH_NET_ENDPOINT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/net/channel.h"
#include "src/net/fault.h"
#include "src/ra/plan.h"
#include "src/storage/database.h"
#include "src/xml/node.h"

namespace dipbench {
namespace net {

/// A named query operation over a database: receives the backing database
/// and positional parameters, returns rows.
using QueryOp = std::function<Result<RowSet>(Database* db,
                                             const std::vector<Value>& params)>;
/// A named update operation: consumes rows, returns rows written.
using UpdateOp =
    std::function<Result<size_t>(Database* db, const RowSet& rows)>;

/// An addressable external system (paper layer ES). Both flavours wrap a
/// Database; the difference is the wire format and therefore the cost and
/// code path: a DatabaseEndpoint ships rows directly (federated DBMS-style
/// remote table access), a WebServiceEndpoint marshals every result through
/// XML (serialize → parse), exactly like the paper's "data sources hidden
/// by Web services".
class Endpoint {
 public:
  Endpoint(std::string name, Database* db, Channel channel,
           double per_row_ms);
  virtual ~Endpoint() = default;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& name() const { return name_; }
  Database* database() { return db_; }

  /// Attaches an observer to this endpoint and its channel: per-endpoint
  /// round-trip and external-row counters plus the channel's byte/transfer
  /// accounting. The priced costs are unchanged.
  void SetObserver(obs::ObsContext obs) {
    obs_ = obs;
    channel_.SetObserver(obs);
  }

  /// Installs (or clears, with nullptr) deterministic fault injection for
  /// this endpoint. Every public operation first consults the injector:
  /// an injected fault fails the call with Unavailable *before* the
  /// operation body runs, so the external system performs no work and
  /// changes no state — retrying a faulted call is always safe.
  void SetFaultInjector(std::unique_ptr<FaultInjector> injector) {
    fault_injector_ = std::move(injector);
  }
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Registers named operations.
  Status RegisterQuery(const std::string& op, QueryOp fn);
  Status RegisterUpdate(const std::string& op, UpdateOp fn);

  /// The public operations are non-virtual: they run the fault-injection
  /// gate and then dispatch to the protected Do* implementations that
  /// subclasses override (NVI), so every endpoint flavour shares one fault
  /// model without re-implementing it.

  /// Executes a query operation; stats (when non-null) accumulate the
  /// communication + external processing cost.
  Result<RowSet> Query(const std::string& op, const std::vector<Value>& params,
                       NetStats* stats);

  /// Executes a query operation and returns the generic XML result-set
  /// document (region-Asia extraction path: the caller translates it with
  /// STX before loading).
  Result<xml::NodePtr> QueryXml(const std::string& op,
                                const std::vector<Value>& params,
                                NetStats* stats);

  /// Executes an update operation with a rows payload.
  Result<size_t> Update(const std::string& op, const RowSet& rows,
                        NetStats* stats);

  /// Sends an XML business message to the endpoint, landing it in the named
  /// queue table via Database::InsertWithTriggers (message-stream event
  /// realization, paper Fig. 9a). The message text is stored as a string
  /// column alongside a sequence id.
  Status SendMessage(const std::string& queue_table, const xml::Node& message,
                     NetStats* stats);

  /// Calls a stored procedure on the backing database.
  Status CallProcedure(const std::string& proc, const std::vector<Value>& args,
                       NetStats* stats);

 protected:
  virtual Result<RowSet> DoQuery(const std::string& op,
                                 const std::vector<Value>& params,
                                 NetStats* stats);
  virtual Result<xml::NodePtr> DoQueryXml(const std::string& op,
                                          const std::vector<Value>& params,
                                          NetStats* stats);
  virtual Result<size_t> DoUpdate(const std::string& op, const RowSet& rows,
                                  NetStats* stats);
  virtual Status DoSendMessage(const std::string& queue_table,
                               const xml::Node& message, NetStats* stats);
  virtual Status DoCallProcedure(const std::string& proc,
                                 const std::vector<Value>& args,
                                 NetStats* stats);

  /// The fault gate every public operation passes through.
  Status MaybeInjectFault(NetStats* stats);

  /// Charges a round trip plus external per-row processing to `stats`.
  void Charge(size_t request_bytes, size_t response_bytes, uint64_t rows,
              NetStats* stats);

  std::string name_;
  Database* db_;  // not owned
  Channel channel_;
  double per_row_ms_;
  obs::ObsContext obs_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::map<std::string, QueryOp> queries_;
  std::map<std::string, UpdateOp> updates_;
};

/// Remote-RDBMS flavour: rows travel in binary form (cheapest path).
class DatabaseEndpoint : public Endpoint {
 public:
  using Endpoint::Endpoint;
};

/// Web-service flavour: every result marshals through the generic XML
/// result-set document and back — the code path is genuinely exercised
/// (serialize, parse), and both directions are charged.
class WebServiceEndpoint : public Endpoint {
 public:
  WebServiceEndpoint(std::string name, Database* db, Channel channel,
                     double per_row_ms, double per_node_ms);

 protected:
  Result<RowSet> DoQuery(const std::string& op,
                         const std::vector<Value>& params,
                         NetStats* stats) override;
  Result<xml::NodePtr> DoQueryXml(const std::string& op,
                                  const std::vector<Value>& params,
                                  NetStats* stats) override;
  Result<size_t> DoUpdate(const std::string& op, const RowSet& rows,
                          NetStats* stats) override;

 private:
  double per_node_ms_;
};

/// Registry of every external system in the scenario (paper machine "ES").
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Takes ownership of the endpoint. Errors on duplicate names.
  Status AddEndpoint(std::unique_ptr<Endpoint> endpoint);
  Result<Endpoint*> Get(const std::string& name);
  bool Has(const std::string& name) const { return endpoints_.count(name) > 0; }
  std::vector<std::string> ListEndpoints() const;

  /// Forwards the observer to every registered endpoint (and endpoints
  /// added later).
  void SetObserver(obs::ObsContext obs) {
    obs_ = obs;
    for (auto& [name, ep] : endpoints_) ep->SetObserver(obs);
  }

  /// Installs the fault plan on every registered endpoint. Each endpoint
  /// gets an independent PRNG stream forked deterministically from `seed`
  /// in endpoint-name order, so adding an endpoint does not reshuffle the
  /// fault schedule of the others. A disabled plan uninstalls all
  /// injectors; with it the run is byte-identical to a never-faulted one.
  void InstallFaults(const FaultPlan& plan, uint64_t seed);

 private:
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
  obs::ObsContext obs_;
};

}  // namespace net
}  // namespace dipbench

#endif  // DIPBENCH_NET_ENDPOINT_H_
