#ifndef DIPBENCH_NET_CHANNEL_H_
#define DIPBENCH_NET_CHANNEL_H_

#include <cstdint>

#include "src/common/random.h"
#include "src/obs/obs.h"

namespace dipbench {
namespace net {

/// Deterministic latency model for a simulated network link. The paper's
/// reference setup connected the three machines over a wireless network;
/// our model charges a fixed per-message latency plus a per-kilobyte
/// transfer cost, with optional multiplicative jitter drawn from a seeded
/// PRNG so runs remain reproducible.
struct LatencyModel {
  double fixed_ms = 2.0;     ///< Per-message round-trip base latency.
  double per_kb_ms = 0.25;   ///< Transfer cost per kilobyte of payload.
  double jitter_frac = 0.0;  ///< +/- fraction of the cost (0 = none).
};

/// A point-to-point link that prices message exchanges.
class Channel {
 public:
  Channel() : Channel(LatencyModel{}, 0) {}
  Channel(LatencyModel model, uint64_t seed) : model_(model), rng_(seed) {}

  const LatencyModel& model() const { return model_; }

  /// Attaches an observer: every transfer bumps net.bytes_total /
  /// net.transfers_total counters and the net.transfer_ms histogram.
  /// Purely additive — the priced cost is unchanged.
  void SetObserver(obs::ObsContext obs) { obs_ = obs; }

  /// Communication cost in virtual milliseconds for shipping `bytes` of
  /// payload one way (request or response).
  double TransferCost(size_t bytes);

  /// Cost of a full round trip: request bytes out, response bytes back.
  double RoundTripCost(size_t request_bytes, size_t response_bytes);

 private:
  LatencyModel model_;
  Rng rng_;
  obs::ObsContext obs_;
};

/// Cumulative network-side statistics collected per process instance; the
/// cost model maps `comm_ms` to the paper's communication-cost category
/// C_c(p) ("time waiting for external systems: network delay and external
/// processing costs").
struct NetStats {
  double comm_ms = 0.0;       ///< Simulated communication + external time.
  uint64_t bytes = 0;         ///< Payload bytes shipped.
  uint64_t rows = 0;          ///< Rows crossing the wire.
  uint64_t interactions = 0;  ///< Round trips performed.

  void Add(const NetStats& other) {
    comm_ms += other.comm_ms;
    bytes += other.bytes;
    rows += other.rows;
    interactions += other.interactions;
  }
};

}  // namespace net
}  // namespace dipbench

#endif  // DIPBENCH_NET_CHANNEL_H_
