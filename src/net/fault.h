#ifndef DIPBENCH_NET_FAULT_H_
#define DIPBENCH_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/net/channel.h"
#include "src/obs/obs.h"

namespace dipbench {
namespace net {

/// One error-rate phase: calls with 0-based index in
/// [after_calls, after_calls + calls) fail with `error_rate` *instead of*
/// the profile's base rate. Scenario manifests compile "degraded for a
/// while, then healthy" stories into these; phases are checked in order and
/// the last matching phase wins, so later entries can carve refinements out
/// of earlier ones.
struct FaultPhase {
  uint64_t after_calls = 0;
  uint64_t calls = 0;
  double error_rate = 0.0;
};

/// Fault characteristics of one endpoint. All probabilities are per
/// endpoint *call* (one Query/Update/SendMessage/CallProcedure counts as
/// one call); all draws come from a seeded PRNG, so a faulty run is exactly
/// as reproducible as a clean one.
struct FaultProfile {
  /// Probability that a call fails with an injected Unavailable error
  /// before the operation body runs (connection refused: the external
  /// system performs no work and changes no state).
  double error_rate = 0.0;

  /// Probability that a call pays an extra latency spike (the call still
  /// succeeds; the spike is charged to the instance's communication cost).
  double spike_rate = 0.0;
  /// Extra communication cost of one spike, in virtual ms.
  double spike_ms = 0.0;

  /// Deterministic outage window: calls with 0-based index in
  /// [outage_after_calls, outage_after_calls + outage_calls) fail
  /// unconditionally. outage_calls == 0 disables the window.
  uint64_t outage_after_calls = 0;
  uint64_t outage_calls = 0;

  /// Error-rate phases (see FaultPhase). Determinism note: a call consumes
  /// an error-rate PRNG draw exactly when its *active* rate is > 0, so a
  /// phase that silences a noisy endpoint also pauses its draw stream —
  /// the contract stays "bytes are a pure function of the profile".
  std::vector<FaultPhase> phases;

  /// The error rate in force for the given 0-based call index.
  double ErrorRateAt(uint64_t call) const {
    double rate = error_rate;
    for (const FaultPhase& phase : phases) {
      if (phase.calls > 0 && call >= phase.after_calls &&
          call < phase.after_calls + phase.calls) {
        rate = phase.error_rate;
      }
    }
    return rate;
  }

  bool enabled() const {
    if (error_rate > 0.0 || (spike_rate > 0.0 && spike_ms > 0.0) ||
        outage_calls > 0) {
      return true;
    }
    for (const FaultPhase& phase : phases) {
      if (phase.error_rate > 0.0 && phase.calls > 0) return true;
    }
    return false;
  }
};

/// The fault schedule of a whole scenario: a default profile plus optional
/// per-endpoint overrides. A disabled plan installs nothing — the run stays
/// byte-identical to one that never heard of faults.
struct FaultPlan {
  FaultProfile defaults;
  std::map<std::string, FaultProfile> per_endpoint;

  const FaultProfile& ProfileFor(const std::string& endpoint) const {
    auto it = per_endpoint.find(endpoint);
    return it == per_endpoint.end() ? defaults : it->second;
  }

  bool enabled() const {
    if (defaults.enabled()) return true;
    for (const auto& [name, p] : per_endpoint) {
      if (p.enabled()) return true;
    }
    return false;
  }

  /// Every endpoint fails each call with probability q (the bench sweep's
  /// fault rate).
  static FaultPlan Uniform(double q) {
    FaultPlan plan;
    plan.defaults.error_rate = q;
    return plan;
  }
};

/// Identifies the engine instance (and retry attempt) on whose behalf the
/// current thread is calling endpoints. The engine opens one scope around
/// each attempt; FaultInjector then keys its PRNG draws on
/// (endpoint, instance tag, attempt, per-endpoint call index) instead of the
/// injector-global arrival order, so the set of injected faults is a pure
/// function of WHICH calls run — independent of how the intra-run scheduler
/// interleaves instances across workers (SPECIFICATION.md §13).
///
/// Scopes are thread-local and nest (restoring the previous scope on
/// destruction); call indices restart at 0 per scope, i.e. per attempt.
class FaultCallScope {
 public:
  FaultCallScope(uint64_t instance_tag, int attempt);
  ~FaultCallScope();
  FaultCallScope(const FaultCallScope&) = delete;
  FaultCallScope& operator=(const FaultCallScope&) = delete;

  /// The scope active on this thread, or nullptr outside any engine attempt.
  static FaultCallScope* Current();

  uint64_t instance_tag() const { return tag_; }
  int attempt() const { return attempt_; }
  /// Returns the 0-based index of this call among the scope's calls to
  /// `endpoint`, then advances it.
  uint64_t NextCallIndex(const std::string& endpoint);

 private:
  uint64_t tag_;
  int attempt_;
  std::map<std::string, uint64_t> counts_;
  FaultCallScope* prev_;
};

/// Per-endpoint fault state. Owned by the Endpoint it is installed on.
///
/// Draw keying: when a FaultCallScope is active and the profile is not
/// order-stateful (no outage window, no phases), every call draws from a
/// fresh PRNG seeded by (injector seed, instance tag, attempt, per-endpoint
/// call index) — order-independent, so parallel and serial execution inject
/// the identical fault set. Order-stateful profiles (and calls outside any
/// scope) use the legacy sequential stream keyed on global arrival order;
/// the scheduler serializes all instances touching such an endpoint to keep
/// that order deterministic.
///
/// Determinism note: a component that is disabled (rate 0) consumes no PRNG
/// draws, so enabling e.g. latency spikes later does not reshuffle the
/// error-rate stream of an existing configuration.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, uint64_t seed, std::string endpoint)
      : profile_(profile), rng_(seed), seed_(seed),
        endpoint_(std::move(endpoint)) {}

  /// Consulted once at the start of every endpoint call, before the
  /// operation body executes. Returns a retryable Unavailable status when a
  /// fault fires; on a latency spike charges spike_ms into `stats` and
  /// returns OK. `obs` feeds the engine.faults_injected / per-endpoint
  /// fault counters (null-safe).
  Status OnCall(NetStats* stats, const obs::ObsContext& obs);

  /// True when fault decisions depend on the global call arrival order
  /// (outage windows, error-rate phases). The scheduler serializes every
  /// instance that claims an endpoint with a stateful injector.
  bool IsOrderStateful() const {
    return profile_.outage_calls > 0 || !profile_.phases.empty();
  }

  const FaultProfile& profile() const { return profile_; }
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }
  uint64_t spikes_injected() const {
    return spikes_.load(std::memory_order_relaxed);
  }

 private:
  Status OnCallSequential(NetStats* stats, const obs::ObsContext& obs);
  Status InjectFault(const char* kind, std::string detail,
                     const obs::ObsContext& obs);

  FaultProfile profile_;
  Rng rng_;  ///< Legacy sequential stream (stateful / unscoped calls only).
  uint64_t seed_ = 0;
  std::string endpoint_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> spikes_{0};
};

}  // namespace net
}  // namespace dipbench

#endif  // DIPBENCH_NET_FAULT_H_
