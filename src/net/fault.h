#ifndef DIPBENCH_NET_FAULT_H_
#define DIPBENCH_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/net/channel.h"
#include "src/obs/obs.h"

namespace dipbench {
namespace net {

/// One error-rate phase: calls with 0-based index in
/// [after_calls, after_calls + calls) fail with `error_rate` *instead of*
/// the profile's base rate. Scenario manifests compile "degraded for a
/// while, then healthy" stories into these; phases are checked in order and
/// the last matching phase wins, so later entries can carve refinements out
/// of earlier ones.
struct FaultPhase {
  uint64_t after_calls = 0;
  uint64_t calls = 0;
  double error_rate = 0.0;
};

/// Fault characteristics of one endpoint. All probabilities are per
/// endpoint *call* (one Query/Update/SendMessage/CallProcedure counts as
/// one call); all draws come from a seeded PRNG, so a faulty run is exactly
/// as reproducible as a clean one.
struct FaultProfile {
  /// Probability that a call fails with an injected Unavailable error
  /// before the operation body runs (connection refused: the external
  /// system performs no work and changes no state).
  double error_rate = 0.0;

  /// Probability that a call pays an extra latency spike (the call still
  /// succeeds; the spike is charged to the instance's communication cost).
  double spike_rate = 0.0;
  /// Extra communication cost of one spike, in virtual ms.
  double spike_ms = 0.0;

  /// Deterministic outage window: calls with 0-based index in
  /// [outage_after_calls, outage_after_calls + outage_calls) fail
  /// unconditionally. outage_calls == 0 disables the window.
  uint64_t outage_after_calls = 0;
  uint64_t outage_calls = 0;

  /// Error-rate phases (see FaultPhase). Determinism note: a call consumes
  /// an error-rate PRNG draw exactly when its *active* rate is > 0, so a
  /// phase that silences a noisy endpoint also pauses its draw stream —
  /// the contract stays "bytes are a pure function of the profile".
  std::vector<FaultPhase> phases;

  /// The error rate in force for the given 0-based call index.
  double ErrorRateAt(uint64_t call) const {
    double rate = error_rate;
    for (const FaultPhase& phase : phases) {
      if (phase.calls > 0 && call >= phase.after_calls &&
          call < phase.after_calls + phase.calls) {
        rate = phase.error_rate;
      }
    }
    return rate;
  }

  bool enabled() const {
    if (error_rate > 0.0 || (spike_rate > 0.0 && spike_ms > 0.0) ||
        outage_calls > 0) {
      return true;
    }
    for (const FaultPhase& phase : phases) {
      if (phase.error_rate > 0.0 && phase.calls > 0) return true;
    }
    return false;
  }
};

/// The fault schedule of a whole scenario: a default profile plus optional
/// per-endpoint overrides. A disabled plan installs nothing — the run stays
/// byte-identical to one that never heard of faults.
struct FaultPlan {
  FaultProfile defaults;
  std::map<std::string, FaultProfile> per_endpoint;

  const FaultProfile& ProfileFor(const std::string& endpoint) const {
    auto it = per_endpoint.find(endpoint);
    return it == per_endpoint.end() ? defaults : it->second;
  }

  bool enabled() const {
    if (defaults.enabled()) return true;
    for (const auto& [name, p] : per_endpoint) {
      if (p.enabled()) return true;
    }
    return false;
  }

  /// Every endpoint fails each call with probability q (the bench sweep's
  /// fault rate).
  static FaultPlan Uniform(double q) {
    FaultPlan plan;
    plan.defaults.error_rate = q;
    return plan;
  }
};

/// Per-endpoint fault state: counts calls, draws faults and spikes from its
/// own forked PRNG stream. Owned by the Endpoint it is installed on.
///
/// Determinism note: a component that is disabled (rate 0) consumes no PRNG
/// draws, so enabling e.g. latency spikes later does not reshuffle the
/// error-rate stream of an existing configuration.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, uint64_t seed, std::string endpoint)
      : profile_(profile), rng_(seed), endpoint_(std::move(endpoint)) {}

  /// Consulted once at the start of every endpoint call, before the
  /// operation body executes. Returns a retryable Unavailable status when a
  /// fault fires; on a latency spike charges spike_ms into `stats` and
  /// returns OK. `obs` feeds the engine.faults_injected / per-endpoint
  /// fault counters (null-safe).
  Status OnCall(NetStats* stats, const obs::ObsContext& obs);

  const FaultProfile& profile() const { return profile_; }
  uint64_t calls() const { return calls_; }
  uint64_t faults_injected() const { return faults_; }
  uint64_t spikes_injected() const { return spikes_; }

 private:
  FaultProfile profile_;
  Rng rng_;
  std::string endpoint_;
  uint64_t calls_ = 0;
  uint64_t faults_ = 0;
  uint64_t spikes_ = 0;
};

}  // namespace net
}  // namespace dipbench

#endif  // DIPBENCH_NET_FAULT_H_
