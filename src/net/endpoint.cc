#include "src/net/endpoint.h"

#include "src/common/random.h"
#include "src/xml/bridge.h"
#include "src/xml/parser.h"

namespace dipbench {
namespace net {

Endpoint::Endpoint(std::string name, Database* db, Channel channel,
                   double per_row_ms)
    : name_(std::move(name)),
      db_(db),
      channel_(channel),
      per_row_ms_(per_row_ms) {}

Status Endpoint::RegisterQuery(const std::string& op, QueryOp fn) {
  if (queries_.count(op) > 0) {
    return Status::AlreadyExists("query op " + op + " on " + name_);
  }
  queries_.emplace(op, std::move(fn));
  return Status::OK();
}

Status Endpoint::RegisterUpdate(const std::string& op, UpdateOp fn) {
  if (updates_.count(op) > 0) {
    return Status::AlreadyExists("update op " + op + " on " + name_);
  }
  updates_.emplace(op, std::move(fn));
  return Status::OK();
}

void Endpoint::Charge(size_t request_bytes, size_t response_bytes,
                      uint64_t rows, NetStats* stats) {
  if (stats == nullptr) return;
  NetStats s;
  s.comm_ms = channel_.RoundTripCost(request_bytes, response_bytes) +
              per_row_ms_ * static_cast<double>(rows);
  s.bytes = request_bytes + response_bytes;
  s.rows = rows;
  s.interactions = 1;
  if (obs_.metrics() != nullptr) {
    obs::MetricsRegistry* m = obs_.metrics();
    m->GetCounter("endpoint." + name_ + ".round_trips")->Increment();
    m->GetCounter("endpoint." + name_ + ".rows")->Increment(rows);
    m->GetCounter("endpoint." + name_ + ".bytes")
        ->Increment(request_bytes + response_bytes);
  }
  stats->Add(s);
}

Status Endpoint::MaybeInjectFault(NetStats* stats) {
  if (fault_injector_ == nullptr) return Status::OK();
  return fault_injector_->OnCall(stats, obs_);
}

Result<RowSet> Endpoint::Query(const std::string& op,
                               const std::vector<Value>& params,
                               NetStats* stats) {
  DIP_RETURN_NOT_OK(MaybeInjectFault(stats));
  return DoQuery(op, params, stats);
}

Result<xml::NodePtr> Endpoint::QueryXml(const std::string& op,
                                        const std::vector<Value>& params,
                                        NetStats* stats) {
  DIP_RETURN_NOT_OK(MaybeInjectFault(stats));
  return DoQueryXml(op, params, stats);
}

Result<size_t> Endpoint::Update(const std::string& op, const RowSet& rows,
                                NetStats* stats) {
  DIP_RETURN_NOT_OK(MaybeInjectFault(stats));
  return DoUpdate(op, rows, stats);
}

Status Endpoint::SendMessage(const std::string& queue_table,
                             const xml::Node& message, NetStats* stats) {
  DIP_RETURN_NOT_OK(MaybeInjectFault(stats));
  return DoSendMessage(queue_table, message, stats);
}

Status Endpoint::CallProcedure(const std::string& proc,
                               const std::vector<Value>& args,
                               NetStats* stats) {
  DIP_RETURN_NOT_OK(MaybeInjectFault(stats));
  return DoCallProcedure(proc, args, stats);
}

Result<RowSet> Endpoint::DoQuery(const std::string& op,
                                 const std::vector<Value>& params,
                                 NetStats* stats) {
  auto it = queries_.find(op);
  if (it == queries_.end()) {
    return Status::NotFound("no query op " + op + " on " + name_);
  }
  DIP_ASSIGN_OR_RETURN(RowSet rows, it->second(db_, params));
  size_t request_bytes = 64 + params.size() * 16;
  // ByteSize memoizes on the RowSet, so the O(rows×cols) walk happens at
  // most once per transferred payload even if callers re-query the size.
  Charge(request_bytes, rows.ByteSize(), rows.size(), stats);
  return rows;
}

Result<xml::NodePtr> Endpoint::DoQueryXml(const std::string& op,
                                          const std::vector<Value>& params,
                                          NetStats* stats) {
  // Dispatches to DoQuery directly: the fault gate already ran in the
  // public QueryXml, and one endpoint call is exactly one fault draw.
  DIP_ASSIGN_OR_RETURN(RowSet rows, DoQuery(op, params, stats));
  return xml::RowSetToXml(rows, "resultset", "row");
}

Result<size_t> Endpoint::DoUpdate(const std::string& op, const RowSet& rows,
                                  NetStats* stats) {
  auto it = updates_.find(op);
  if (it == updates_.end()) {
    return Status::NotFound("no update op " + op + " on " + name_);
  }
  DIP_ASSIGN_OR_RETURN(size_t written, it->second(db_, rows));
  // Memoized: a multicast that Updates the same RowSet against N targets
  // sizes the payload once, not N times.
  Charge(rows.ByteSize(), 32, written, stats);
  return written;
}

Status Endpoint::DoSendMessage(const std::string& queue_table,
                               const xml::Node& message, NetStats* stats) {
  std::string text = xml::WriteXml(message);
  int64_t tid = db_->NextSequenceValue(queue_table + "_seq");
  Row row{Value::Int(tid), Value::String(text)};
  Charge(text.size(), 16, 1, stats);
  return db_->InsertWithTriggers(queue_table, std::move(row));
}

Status Endpoint::DoCallProcedure(const std::string& proc,
                                 const std::vector<Value>& args,
                                 NetStats* stats) {
  uint64_t before = db_->TotalRowsRead() + db_->TotalRowsWritten();
  DIP_RETURN_NOT_OK(db_->CallProcedure(proc, args));
  uint64_t touched = db_->TotalRowsRead() + db_->TotalRowsWritten() - before;
  Charge(64, 32, touched, stats);
  return Status::OK();
}

WebServiceEndpoint::WebServiceEndpoint(std::string name, Database* db,
                                       Channel channel, double per_row_ms,
                                       double per_node_ms)
    : Endpoint(std::move(name), db, channel, per_row_ms),
      per_node_ms_(per_node_ms) {}

Result<xml::NodePtr> WebServiceEndpoint::DoQueryXml(
    const std::string& op, const std::vector<Value>& params, NetStats* stats) {
  auto it = queries_.find(op);
  if (it == queries_.end()) {
    return Status::NotFound("no query op " + op + " on " + name_);
  }
  DIP_ASSIGN_OR_RETURN(RowSet rows, it->second(db_, params));
  // Marshal through the generic result-set XSD: serialize on the service
  // side, ship the text, parse on the caller side. The full path runs.
  xml::NodePtr doc = xml::RowSetToXml(rows, "resultset", "row");
  std::string text = xml::WriteXml(*doc);
  DIP_ASSIGN_OR_RETURN(xml::NodePtr reparsed, xml::ParseXml(text));
  size_t request_bytes = 128 + params.size() * 16;
  Charge(request_bytes, text.size(), rows.size(), stats);
  if (stats != nullptr) {
    stats->comm_ms +=
        per_node_ms_ * static_cast<double>(reparsed->SubtreeSize());
  }
  return reparsed;
}

Result<RowSet> WebServiceEndpoint::DoQuery(const std::string& op,
                                           const std::vector<Value>& params,
                                           NetStats* stats) {
  auto it = queries_.find(op);
  if (it == queries_.end()) {
    return Status::NotFound("no query op " + op + " on " + name_);
  }
  // Peek the schema via the op itself, then unmarshal the XML result.
  DIP_ASSIGN_OR_RETURN(RowSet rows, it->second(db_, params));
  xml::NodePtr doc = xml::RowSetToXml(rows, "resultset", "row");
  std::string text = xml::WriteXml(*doc);
  DIP_ASSIGN_OR_RETURN(xml::NodePtr reparsed, xml::ParseXml(text));
  DIP_ASSIGN_OR_RETURN(RowSet back,
                       xml::XmlToRowSet(*reparsed, rows.schema, "row"));
  size_t request_bytes = 128 + params.size() * 16;
  Charge(request_bytes, text.size(), back.size(), stats);
  if (stats != nullptr) {
    stats->comm_ms +=
        per_node_ms_ * static_cast<double>(reparsed->SubtreeSize());
  }
  return back;
}

Result<size_t> WebServiceEndpoint::DoUpdate(const std::string& op,
                                            const RowSet& rows,
                                            NetStats* stats) {
  auto it = updates_.find(op);
  if (it == updates_.end()) {
    return Status::NotFound("no update op " + op + " on " + name_);
  }
  // Rows travel as XML: serialize, ship, parse on the service side.
  xml::NodePtr doc = xml::RowSetToXml(rows, "update", "row");
  std::string text = xml::WriteXml(*doc);
  DIP_ASSIGN_OR_RETURN(xml::NodePtr reparsed, xml::ParseXml(text));
  DIP_ASSIGN_OR_RETURN(RowSet unmarshaled,
                       xml::XmlToRowSet(*reparsed, rows.schema, "row"));
  DIP_ASSIGN_OR_RETURN(size_t written, it->second(db_, unmarshaled));
  Charge(text.size(), 32, written, stats);
  if (stats != nullptr) {
    stats->comm_ms +=
        per_node_ms_ * static_cast<double>(reparsed->SubtreeSize());
  }
  return written;
}

Status Network::AddEndpoint(std::unique_ptr<Endpoint> endpoint) {
  const std::string& name = endpoint->name();
  if (endpoints_.count(name) > 0) {
    return Status::AlreadyExists("endpoint " + name);
  }
  if (obs_.enabled()) endpoint->SetObserver(obs_);
  endpoints_.emplace(name, std::move(endpoint));
  return Status::OK();
}

Result<Endpoint*> Network::Get(const std::string& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    return Status::NotFound("no endpoint " + name);
  }
  return it->second.get();
}

void Network::InstallFaults(const FaultPlan& plan, uint64_t seed) {
  for (auto& [name, ep] : endpoints_) {
    const FaultProfile& profile = plan.ProfileFor(name);
    if (!plan.enabled() || !profile.enabled()) {
      ep->SetFaultInjector(nullptr);
      continue;
    }
    // Seed = f(master seed, endpoint name): independent streams that stay
    // put when endpoints are added or removed. SeedHash is FNV-1a —
    // std::hash is implementation-defined and would break the "same seed,
    // same faults everywhere" guarantee.
    ep->SetFaultInjector(std::make_unique<FaultInjector>(
        profile, seed ^ SeedHash(name), name));
  }
}

std::vector<std::string> Network::ListEndpoints() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, _] : endpoints_) names.push_back(name);
  return names;
}

}  // namespace net
}  // namespace dipbench
