#ifndef DIPBENCH_NET_FILE_ENDPOINT_H_
#define DIPBENCH_NET_FILE_ENDPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "src/net/endpoint.h"

namespace dipbench {
namespace net {

/// A named collection of XML flat files. Kept in memory for deterministic
/// benchmark runs; SaveToDisk/LoadFromDisk round-trip the store through a
/// real directory for the toolsuite's import/export paths.
class FileStore {
 public:
  FileStore() = default;

  void Write(const std::string& name, std::string content) {
    files_[name] = std::move(content);
  }
  Result<std::string> Read(const std::string& name) const;
  bool Exists(const std::string& name) const {
    return files_.count(name) > 0;
  }
  Status Remove(const std::string& name);
  std::vector<std::string> List() const;
  void Clear() { files_.clear(); }
  size_t size() const { return files_.size(); }

  /// Writes every file into `directory` (created if absent).
  Status SaveToDisk(const std::string& directory) const;
  /// Reads every regular file of `directory` into the store.
  Status LoadFromDisk(const std::string& directory);

  /// Saves into a freshly claimed `base_dir/<prefix>-<pid>-<n>` directory
  /// and returns its path. The directory name is unique within the process
  /// (atomic counter) and across processes (pid), so concurrent benchmark
  /// runs staging under the same base never clobber each other's exports —
  /// use this instead of a shared fixed staging path whenever more than one
  /// run may be in flight.
  Result<std::string> SaveToUniqueDir(const std::string& base_dir,
                                      const std::string& prefix) const;

  /// Claims a process-unique directory path under `base_dir` (creating it)
  /// without writing any files — shared by SaveToUniqueDir and tests that
  /// need an isolated scratch directory under a parallel ctest.
  static Result<std::string> ClaimUniqueDir(const std::string& base_dir,
                                            const std::string& prefix);

 private:
  std::map<std::string, std::string> files_;
};

/// The third external-system type of the paper ("the external system types
/// are limited to RDBMS, Web services and XML-based flat files"): an
/// endpoint whose operations read and write XML documents in a FileStore.
///
/// A file query parses `<root><row_name>...</row_name></root>` documents
/// into rows of a declared schema; a file update serializes a row payload
/// into such a document (replacing or appending). Costs: channel transfer
/// for the file bytes plus per-node parse/serialize work.
class XmlFileEndpoint : public Endpoint {
 public:
  XmlFileEndpoint(std::string name, FileStore* store, Channel channel,
                  double per_node_ms);

  /// Declares a query op that reads `file_name` as rows of `schema`.
  Status RegisterFileQuery(const std::string& op, std::string file_name,
                           Schema schema, std::string row_name);
  /// Declares an update op that writes the payload into `file_name`.
  /// With `append` the new rows are added behind the existing ones.
  Status RegisterFileUpdate(const std::string& op, std::string file_name,
                            std::string root_name, std::string row_name,
                            bool append = false);

  FileStore* store() { return store_; }

 protected:
  Result<RowSet> DoQuery(const std::string& op,
                         const std::vector<Value>& params,
                         NetStats* stats) override;
  Result<size_t> DoUpdate(const std::string& op, const RowSet& rows,
                          NetStats* stats) override;

  /// Flat files expose no message queues or procedures.
  Status DoSendMessage(const std::string&, const xml::Node&,
                       NetStats*) override;
  Status DoCallProcedure(const std::string&, const std::vector<Value>&,
                         NetStats*) override;

 private:
  struct FileQuery {
    std::string file_name;
    Schema schema;
    std::string row_name;
  };
  struct FileUpdate {
    std::string file_name;
    std::string root_name;
    std::string row_name;
    bool append;
  };

  FileStore* store_;
  double per_node_ms_;
  std::map<std::string, FileQuery> file_queries_;
  std::map<std::string, FileUpdate> file_updates_;
};

}  // namespace net
}  // namespace dipbench

#endif  // DIPBENCH_NET_FILE_ENDPOINT_H_
