#include "src/net/channel.h"

namespace dipbench {
namespace net {

double Channel::TransferCost(size_t bytes) {
  double cost = model_.fixed_ms / 2.0 +
                model_.per_kb_ms * (static_cast<double>(bytes) / 1024.0);
  if (model_.jitter_frac > 0.0) {
    double j = rng_.NextDoubleIn(-model_.jitter_frac, model_.jitter_frac);
    cost *= (1.0 + j);
  }
  if (obs_.metrics() != nullptr) {
    obs::MetricsRegistry* m = obs_.metrics();
    m->GetCounter("net.transfers_total")->Increment();
    m->GetCounter("net.bytes_total")->Increment(bytes);
    m->GetHistogram("net.transfer_ms", obs::DefaultLatencyBucketsMs())
        ->Observe(cost);
  }
  return cost;
}

double Channel::RoundTripCost(size_t request_bytes, size_t response_bytes) {
  return TransferCost(request_bytes) + TransferCost(response_bytes);
}

}  // namespace net
}  // namespace dipbench
