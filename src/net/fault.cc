#include "src/net/fault.h"

#include "src/common/string_util.h"

namespace dipbench {
namespace net {

Status FaultInjector::OnCall(NetStats* stats, const obs::ObsContext& obs) {
  uint64_t call = calls_++;

  bool fail = false;
  const char* kind = "";
  const double error_rate = profile_.ErrorRateAt(call);
  if (profile_.outage_calls > 0 && call >= profile_.outage_after_calls &&
      call < profile_.outage_after_calls + profile_.outage_calls) {
    fail = true;
    kind = "outage";
  } else if (error_rate > 0.0 && rng_.NextDouble() < error_rate) {
    fail = true;
    kind = "error";
  }
  if (fail) {
    ++faults_;
    obs.Count("engine.faults_injected");
    if (obs.metrics() != nullptr) {
      obs.metrics()->GetCounter("endpoint." + endpoint_ + ".faults")
          ->Increment();
    }
    return Status::Unavailable(StrFormat("injected %s fault on %s (call #%llu)",
                                         kind, endpoint_.c_str(),
                                         static_cast<unsigned long long>(call)));
  }

  if (profile_.spike_rate > 0.0 && profile_.spike_ms > 0.0 &&
      rng_.NextDouble() < profile_.spike_rate) {
    ++spikes_;
    obs.Count("engine.latency_spikes");
    if (stats != nullptr) {
      NetStats spike;
      spike.comm_ms = profile_.spike_ms;
      stats->Add(spike);
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace dipbench
