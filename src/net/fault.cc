#include "src/net/fault.h"

#include "src/common/string_util.h"

namespace dipbench {
namespace net {

namespace {

thread_local FaultCallScope* g_current_scope = nullptr;

/// splitmix64 finalizer — decorrelates the keyed-draw seed components so
/// (tag, attempt, call) triples that differ in one bit land far apart.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultCallScope::FaultCallScope(uint64_t instance_tag, int attempt)
    : tag_(instance_tag), attempt_(attempt), prev_(g_current_scope) {
  g_current_scope = this;
}

FaultCallScope::~FaultCallScope() { g_current_scope = prev_; }

FaultCallScope* FaultCallScope::Current() { return g_current_scope; }

uint64_t FaultCallScope::NextCallIndex(const std::string& endpoint) {
  return counts_[endpoint]++;
}

Status FaultInjector::InjectFault(const char* kind, std::string detail,
                                  const obs::ObsContext& obs) {
  faults_.fetch_add(1, std::memory_order_relaxed);
  obs.Count("engine.faults_injected");
  if (obs.metrics() != nullptr) {
    obs.metrics()->GetCounter("endpoint." + endpoint_ + ".faults")
        ->Increment();
  }
  return Status::Unavailable(StrFormat("injected %s fault on %s (%s)", kind,
                                       endpoint_.c_str(), detail.c_str()));
}

Status FaultInjector::OnCall(NetStats* stats, const obs::ObsContext& obs) {
  FaultCallScope* scope = FaultCallScope::Current();
  if (scope == nullptr || IsOrderStateful()) {
    // Global-arrival-order semantics: outage windows and phases are defined
    // over the injector-wide call index, and unscoped callers predate the
    // scheduler. The scheduler serializes every instance claiming a
    // stateful endpoint, so this path never races.
    return OnCallSequential(stats, obs);
  }

  const uint64_t idx = scope->NextCallIndex(endpoint_);
  calls_.fetch_add(1, std::memory_order_relaxed);
  uint64_t key = seed_;
  key = Mix64(key ^ scope->instance_tag());
  key = Mix64(key ^ static_cast<uint64_t>(scope->attempt()));
  key = Mix64(key ^ idx);
  Rng rng(key);

  if (profile_.error_rate > 0.0 && rng.NextDouble() < profile_.error_rate) {
    return InjectFault(
        "error",
        StrFormat("instance #%llu attempt %d call %llu",
                  static_cast<unsigned long long>(scope->instance_tag()),
                  scope->attempt(), static_cast<unsigned long long>(idx)),
        obs);
  }

  if (profile_.spike_rate > 0.0 && profile_.spike_ms > 0.0 &&
      rng.NextDouble() < profile_.spike_rate) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    obs.Count("engine.latency_spikes");
    if (stats != nullptr) {
      NetStats spike;
      spike.comm_ms = profile_.spike_ms;
      stats->Add(spike);
    }
  }
  return Status::OK();
}

Status FaultInjector::OnCallSequential(NetStats* stats,
                                       const obs::ObsContext& obs) {
  uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);

  bool fail = false;
  const char* kind = "";
  const double error_rate = profile_.ErrorRateAt(call);
  if (profile_.outage_calls > 0 && call >= profile_.outage_after_calls &&
      call < profile_.outage_after_calls + profile_.outage_calls) {
    fail = true;
    kind = "outage";
  } else if (error_rate > 0.0 && rng_.NextDouble() < error_rate) {
    fail = true;
    kind = "error";
  }
  if (fail) {
    return InjectFault(kind,
                       StrFormat("call #%llu",
                                 static_cast<unsigned long long>(call)),
                       obs);
  }

  if (profile_.spike_rate > 0.0 && profile_.spike_ms > 0.0 &&
      rng_.NextDouble() < profile_.spike_rate) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    obs.Count("engine.latency_spikes");
    if (stats != nullptr) {
      NetStats spike;
      spike.comm_ms = profile_.spike_ms;
      stats->Add(spike);
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace dipbench
