#ifndef DIPBENCH_SQL_PARSER_H_
#define DIPBENCH_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ra/plan.h"
#include "src/sql/lexer.h"

namespace dipbench {
namespace sql {

/// One SELECT output item: either a plain expression (with optional alias)
/// or an aggregate call. `star` marks `SELECT *`.
struct SelectItem {
  bool star = false;
  bool is_aggregate = false;
  AggFunc agg_func = AggFunc::kCount;
  std::string agg_input;  ///< column name; empty for COUNT(*)
  ExprPtr expr;           ///< non-aggregate expression
  std::string alias;      ///< output name (derived when empty)
};

struct JoinClause {
  std::string table;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::string from_table;
  std::vector<JoinClause> joins;
  ExprPtr where;  ///< null when absent
  std::vector<std::string> group_by;
  ExprPtr having;  ///< null when absent (references output column names)
  std::vector<SortKey> order_by;
  std::optional<size_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty = schema order
  std::vector<std::vector<ExprPtr>> rows;  ///< constant expressions
  /// INSERT INTO ... SELECT form (rows empty in that case).
  std::shared_ptr<SelectStmt> select;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct ColumnDef {
  std::string name;
  DataType type = DataType::kString;
  bool not_null = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
};

/// A parsed statement (exactly one member set, per `kind`).
struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete, kCreateTable };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  InsertStmt insert;
  UpdateStmt update;
  DeleteStmt del;
  CreateTableStmt create;
};

/// Parses one SQL statement (an optional trailing ';' is consumed).
///
/// Supported grammar (see tests/sql_test.cc for the full behavior):
///   SELECT [DISTINCT] {* | expr [AS name], ...} FROM t
///     [JOIN t2 ON a = b [AND c = d]...]...
///     [WHERE expr] [GROUP BY cols [HAVING expr]]
///     [ORDER BY col [ASC|DESC], ...]
///     [LIMIT n]
///   INSERT INTO t [(cols)] {VALUES (exprs), ... | SELECT ...}
///   UPDATE t SET col = expr, ... [WHERE expr]
///   DELETE FROM t [WHERE expr]
///   CREATE TABLE t (col TYPE [NOT NULL], ..., [PRIMARY KEY (cols)])
/// Aggregates COUNT/SUM/AVG/MIN/MAX are recognized in SELECT items.
/// Qualified column names (t.col) resolve by the column part.
Result<Statement> ParseSql(const std::string& input);

}  // namespace sql
}  // namespace dipbench

#endif  // DIPBENCH_SQL_PARSER_H_
