#include "src/sql/lexer.h"

namespace dipbench {
namespace sql {
namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9');
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

char ToUpper(char c) {
  return c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.raw = input.substr(start, i - start);
      tok.text.reserve(tok.raw.size());
      for (char rc : tok.raw) tok.text.push_back(ToUpper(rc));
      out.push_back(std::move(tok));
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < input.size() &&
                       IsDigit(input[i + 1]))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < input.size() &&
             (IsDigit(input[i]) || (input[i] == '.' && !seen_dot))) {
        if (input[i] == '.') seen_dot = true;
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = tok.raw = input.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            value.push_back('\'');  // escaped quote
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = tok.raw = value;
      out.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    if (i + 1 < input.size()) {
      std::string two = input.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        tok.type = TokenType::kSymbol;
        tok.text = tok.raw = two == "<>" ? "!=" : two;
        out.push_back(std::move(tok));
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),.*=<>+-/%;";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = tok.raw = std::string(1, c);
      out.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = input.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace sql
}  // namespace dipbench
