#include "src/sql/parser.h"

#include "src/common/string_util.h"

namespace dipbench {
namespace sql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    Statement stmt;
    const Token& first = Peek();
    if (first.IsWord("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      DIP_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (first.IsWord("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      DIP_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (first.IsWord("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      DIP_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
    } else if (first.IsWord("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      DIP_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    } else if (first.IsWord("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      DIP_ASSIGN_OR_RETURN(stmt.create, ParseCreate());
    } else {
      return Err("expected SELECT, INSERT, UPDATE, DELETE or CREATE");
    }
    if (Peek().IsSymbol(";")) Advance();
    if (!Peek().Is(TokenType::kEnd)) return Err("trailing input");
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* word) {
    if (Peek().IsWord(word)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const char* word) {
    if (!Accept(word)) return Err(std::string("expected ") + word);
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Err(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }
  Status Err(const std::string& what) const {
    return Status::ParseError(what + " near offset " +
                              std::to_string(Peek().offset) +
                              (Peek().raw.empty() ? "" : " ('" + Peek().raw +
                                                             "')"));
  }

  Result<std::string> ParseIdentifier() {
    if (!Peek().Is(TokenType::kIdentifier)) return Err("expected identifier");
    std::string name = Advance().raw;
    // Qualified name: keep the column part only (flat namespaces).
    if (Peek().IsSymbol(".") && Peek(1).Is(TokenType::kIdentifier)) {
      Advance();
      name = Advance().raw;
    }
    return name;
  }

  // --- expressions ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Or(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = And(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      DIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Not(operand);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Accept("IS")) {
      bool negated = Accept("NOT");
      DIP_RETURN_NOT_OK(Expect("NULL"));
      ExprPtr test = IsNull(lhs);
      return negated ? Not(test) : test;
    }
    if (Accept("IN")) {
      DIP_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      do {
        DIP_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        Schema empty;
        Row none;
        DIP_ASSIGN_OR_RETURN(Value v, item->Eval(none, empty));
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      DIP_RETURN_NOT_OK(ExpectSymbol(")"));
      return InList(lhs, std::move(values));
    }
    struct OpMap {
      const char* sym;
      CompareOp op;
    };
    static const OpMap kOps[] = {{"=", CompareOp::kEq}, {"!=", CompareOp::kNe},
                                 {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
                                 {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (Peek().IsSymbol(sym)) {
        Advance();
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Cmp(op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    DIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Add(lhs, rhs);
      } else if (AcceptSymbol("-")) {
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Sub(lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (AcceptSymbol("*")) {
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Mul(lhs, rhs);
      } else if (AcceptSymbol("/")) {
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Div(lhs, rhs);
      } else if (AcceptSymbol("%")) {
        DIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Arith(ArithmeticOp::kMod, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      DIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Sub(Lit(int64_t{0}), operand);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.Is(TokenType::kNumber)) {
      Advance();
      if (tok.text.find('.') != std::string::npos) {
        DIP_ASSIGN_OR_RETURN(Value v,
                             Value::Parse(tok.text, DataType::kDouble));
        return Lit(std::move(v));
      }
      DIP_ASSIGN_OR_RETURN(Value v, Value::Parse(tok.text, DataType::kInt64));
      return Lit(std::move(v));
    }
    if (tok.Is(TokenType::kString)) {
      Advance();
      return Lit(Value::String(tok.text));
    }
    if (tok.IsWord("NULL")) {
      Advance();
      return Lit(Value::Null());
    }
    if (tok.IsWord("TRUE")) {
      Advance();
      return Lit(Value::Bool(true));
    }
    if (tok.IsWord("FALSE")) {
      Advance();
      return Lit(Value::Bool(false));
    }
    if (tok.IsWord("DATE")) {
      // DATE '20080412' or DATE 20080412.
      Advance();
      const Token& lit = Peek();
      if (lit.Is(TokenType::kString) || lit.Is(TokenType::kNumber)) {
        Advance();
        DIP_ASSIGN_OR_RETURN(Value v, Value::Parse(lit.text, DataType::kDate));
        return Lit(std::move(v));
      }
      return Err("expected date literal");
    }
    if (tok.Is(TokenType::kIdentifier)) {
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        std::string fn = StrLower(Advance().raw);
        Advance();  // '('
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          do {
            DIP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (AcceptSymbol(","));
        }
        DIP_RETURN_NOT_OK(ExpectSymbol(")"));
        return Func(fn, std::move(args));
      }
      DIP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
      return Col(std::move(name));
    }
    if (tok.IsSymbol("(")) {
      Advance();
      DIP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      DIP_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return Err("expected expression");
  }

  // --- statements ---

  Result<std::optional<AggFunc>> AggregateKeyword() {
    const Token& tok = Peek();
    if (!tok.Is(TokenType::kIdentifier) || !Peek(1).IsSymbol("(")) {
      return std::optional<AggFunc>();
    }
    if (tok.text == "COUNT") return std::optional<AggFunc>(AggFunc::kCount);
    if (tok.text == "SUM") return std::optional<AggFunc>(AggFunc::kSum);
    if (tok.text == "AVG") return std::optional<AggFunc>(AggFunc::kAvg);
    if (tok.text == "MIN") return std::optional<AggFunc>(AggFunc::kMin);
    if (tok.text == "MAX") return std::optional<AggFunc>(AggFunc::kMax);
    return std::optional<AggFunc>();
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    DIP_RETURN_NOT_OK(Expect("SELECT"));
    stmt.distinct = Accept("DISTINCT");
    if (AcceptSymbol("*")) {
      SelectItem star;
      star.star = true;
      stmt.items.push_back(std::move(star));
    } else {
      do {
        SelectItem item;
        DIP_ASSIGN_OR_RETURN(auto agg, AggregateKeyword());
        if (agg.has_value()) {
          item.is_aggregate = true;
          item.agg_func = *agg;
          std::string fn = StrLower(Advance().raw);
          Advance();  // '('
          if (AcceptSymbol("*")) {
            if (item.agg_func != AggFunc::kCount) {
              return Err("only COUNT supports *");
            }
          } else {
            DIP_ASSIGN_OR_RETURN(item.agg_input, ParseIdentifier());
          }
          DIP_RETURN_NOT_OK(ExpectSymbol(")"));
          item.alias = fn + (item.agg_input.empty() ? "" : "_" +
                                                              item.agg_input);
        } else {
          DIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
          item.alias = item.expr->ToString();
        }
        if (Accept("AS")) {
          DIP_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
        }
        stmt.items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    DIP_RETURN_NOT_OK(Expect("FROM"));
    DIP_ASSIGN_OR_RETURN(stmt.from_table, ParseIdentifier());
    while (Accept("JOIN")) {
      JoinClause join;
      DIP_ASSIGN_OR_RETURN(join.table, ParseIdentifier());
      DIP_RETURN_NOT_OK(Expect("ON"));
      do {
        DIP_ASSIGN_OR_RETURN(std::string left, ParseIdentifier());
        DIP_RETURN_NOT_OK(ExpectSymbol("="));
        DIP_ASSIGN_OR_RETURN(std::string right, ParseIdentifier());
        join.left_keys.push_back(std::move(left));
        join.right_keys.push_back(std::move(right));
      } while (Accept("AND"));
      stmt.joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      DIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Accept("GROUP")) {
      DIP_RETURN_NOT_OK(Expect("BY"));
      do {
        DIP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
      if (Accept("HAVING")) {
        DIP_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
      }
    }
    if (Accept("ORDER")) {
      DIP_RETURN_NOT_OK(Expect("BY"));
      do {
        SortKey key;
        DIP_ASSIGN_OR_RETURN(key.column, ParseIdentifier());
        if (Accept("DESC")) {
          key.ascending = false;
        } else {
          Accept("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }
    if (Accept("LIMIT")) {
      if (!Peek().Is(TokenType::kNumber)) return Err("expected LIMIT count");
      DIP_ASSIGN_OR_RETURN(Value n,
                           Value::Parse(Advance().text, DataType::kInt64));
      if (n.AsInt() < 0) return Err("negative LIMIT");
      stmt.limit = static_cast<size_t>(n.AsInt());
    }
    return stmt;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    DIP_RETURN_NOT_OK(Expect("INSERT"));
    DIP_RETURN_NOT_OK(Expect("INTO"));
    DIP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    if (AcceptSymbol("(")) {
      do {
        DIP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt.columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      DIP_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (Peek().IsWord("SELECT")) {
      DIP_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      stmt.select = std::make_shared<SelectStmt>(std::move(select));
      return stmt;
    }
    DIP_RETURN_NOT_OK(Expect("VALUES"));
    do {
      DIP_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        DIP_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      DIP_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    UpdateStmt stmt;
    DIP_RETURN_NOT_OK(Expect("UPDATE"));
    DIP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    DIP_RETURN_NOT_OK(Expect("SET"));
    do {
      DIP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      DIP_RETURN_NOT_OK(ExpectSymbol("="));
      DIP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
    } while (AcceptSymbol(","));
    if (Accept("WHERE")) {
      DIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    DIP_RETURN_NOT_OK(Expect("DELETE"));
    DIP_RETURN_NOT_OK(Expect("FROM"));
    DIP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    if (Accept("WHERE")) {
      DIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<DataType> ParseColumnType() {
    if (!Peek().Is(TokenType::kIdentifier)) return Err("expected column type");
    std::string type = Advance().text;
    // VARCHAR(n) and similar length suffixes are accepted and ignored.
    if (AcceptSymbol("(")) {
      while (!Peek().IsSymbol(")") && !Peek().Is(TokenType::kEnd)) Advance();
      DIP_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (type == "INT" || type == "INTEGER" || type == "BIGINT") {
      return DataType::kInt64;
    }
    if (type == "DOUBLE" || type == "FLOAT" || type == "REAL" ||
        type == "DECIMAL" || type == "NUMERIC") {
      return DataType::kDouble;
    }
    if (type == "STRING" || type == "TEXT" || type == "VARCHAR" ||
        type == "CHAR" || type == "CLOB") {
      return DataType::kString;
    }
    if (type == "BOOL" || type == "BOOLEAN") return DataType::kBool;
    if (type == "DATE") return DataType::kDate;
    return Err("unknown column type " + type);
  }

  Result<CreateTableStmt> ParseCreate() {
    CreateTableStmt stmt;
    DIP_RETURN_NOT_OK(Expect("CREATE"));
    DIP_RETURN_NOT_OK(Expect("TABLE"));
    DIP_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());
    DIP_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      if (Peek().IsWord("PRIMARY")) {
        Advance();
        DIP_RETURN_NOT_OK(Expect("KEY"));
        DIP_RETURN_NOT_OK(ExpectSymbol("("));
        do {
          DIP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
          stmt.primary_key.push_back(std::move(col));
        } while (AcceptSymbol(","));
        DIP_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      ColumnDef def;
      DIP_ASSIGN_OR_RETURN(def.name, ParseIdentifier());
      DIP_ASSIGN_OR_RETURN(def.type, ParseColumnType());
      if (Accept("NOT")) {
        DIP_RETURN_NOT_OK(Expect("NULL"));
        def.not_null = true;
      }
      if (Accept("PRIMARY")) {
        DIP_RETURN_NOT_OK(Expect("KEY"));
        def.not_null = true;
        stmt.primary_key.push_back(def.name);
      }
      stmt.columns.push_back(std::move(def));
    } while (AcceptSymbol(","));
    DIP_RETURN_NOT_OK(ExpectSymbol(")"));
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(const std::string& input) {
  DIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace sql
}  // namespace dipbench
