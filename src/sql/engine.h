#ifndef DIPBENCH_SQL_ENGINE_H_
#define DIPBENCH_SQL_ENGINE_H_

#include <optional>
#include <string>

#include "src/net/endpoint.h"
#include "src/sql/parser.h"
#include "src/storage/database.h"

namespace dipbench {
namespace sql {

/// Result of executing one SQL statement.
struct SqlResult {
  bool is_query = false;
  RowSet rows;         ///< populated for SELECT
  size_t affected = 0; ///< rows inserted / updated / deleted
};

/// Executes SQL statements against one database, planning SELECTs onto the
/// relational-algebra operators. Intended for registering external-system
/// operations concisely and for interactive exploration (see
/// examples/sql_shell.cpp); the integration processes themselves speak the
/// plan API directly.
class SqlEngine {
 public:
  explicit SqlEngine(Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<SqlResult> Execute(const std::string& statement);

  /// Executes a parsed statement (for callers that cache parses).
  Result<SqlResult> Execute(const Statement& stmt);

  /// Convenience: run a SELECT and return its rows.
  Result<RowSet> Query(const std::string& select_statement);

  /// Work counters of the last Execute (for cost accounting).
  const ExecContext& last_exec() const { return last_exec_; }

  /// Pins this engine's statements to one execution mode regardless of the
  /// process-wide default (SetExecMode): kMaterialize keeps the legacy
  /// operator-at-a-time materializing path, kPipeline forces batch
  /// streaming. std::nullopt (the default) follows the global mode. Results
  /// and work counters are identical either way; this exists for parity
  /// testing and benchmarking.
  void set_exec_mode(std::optional<ExecMode> mode) { exec_mode_ = mode; }
  std::optional<ExecMode> exec_mode() const { return exec_mode_; }

 private:
  Result<SqlResult> ExecuteSelect(const SelectStmt& stmt);
  Result<SqlResult> ExecuteInsert(const InsertStmt& stmt);
  Result<SqlResult> ExecuteUpdate(const UpdateStmt& stmt);
  Result<SqlResult> ExecuteDelete(const DeleteStmt& stmt);
  Result<SqlResult> ExecuteCreate(const CreateTableStmt& stmt);

  Database* db_;
  ExecContext last_exec_;
  std::optional<ExecMode> exec_mode_;
};

/// Wraps a SELECT statement as an endpoint query operation: the statement
/// is parsed once at registration; positional parameters are not supported
/// (bake constants into the statement or use the plan API).
///
///   endpoint->RegisterQuery("big_accounts",
///       sql::SqlQueryOp("SELECT * FROM customer WHERE balance > 200"));
Result<net::QueryOp> SqlQueryOp(const std::string& select_statement);

}  // namespace sql
}  // namespace dipbench

#endif  // DIPBENCH_SQL_ENGINE_H_
