#include "src/sql/engine.h"

namespace dipbench {
namespace sql {

Result<SqlResult> SqlEngine::Execute(const std::string& statement) {
  DIP_ASSIGN_OR_RETURN(Statement stmt, ParseSql(statement));
  return Execute(stmt);
}

Result<SqlResult> SqlEngine::Execute(const Statement& stmt) {
  last_exec_ = ExecContext();
  // Engine-level mode pin (parity testing / benchmarking); nullopt follows
  // the process-wide mode.
  std::optional<ScopedExecMode> scoped;
  if (exec_mode_.has_value()) scoped.emplace(*exec_mode_);
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(stmt.select);
    case Statement::Kind::kInsert:
      return ExecuteInsert(stmt.insert);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(stmt.update);
    case Statement::Kind::kDelete:
      return ExecuteDelete(stmt.del);
    case Statement::Kind::kCreateTable:
      return ExecuteCreate(stmt.create);
  }
  return Status::Internal("unknown statement kind");
}

Result<RowSet> SqlEngine::Query(const std::string& select_statement) {
  DIP_ASSIGN_OR_RETURN(SqlResult result, Execute(select_statement));
  if (!result.is_query) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  return result.rows;
}

Result<SqlResult> SqlEngine::ExecuteSelect(const SelectStmt& stmt) {
  DIP_ASSIGN_OR_RETURN(Table * from, db_->GetTable(stmt.from_table));
  PlanPtr plan = ScanTable(from);
  for (const JoinClause& join : stmt.joins) {
    DIP_ASSIGN_OR_RETURN(Table * right, db_->GetTable(join.table));
    plan = HashJoin(plan, ScanTable(right), join.left_keys, join.right_keys);
  }
  if (stmt.where != nullptr) plan = Filter(plan, stmt.where);

  bool has_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (item.is_aggregate) has_aggregate = true;
  }

  // ORDER BY placement: when every sort column is an output column the
  // sort runs after the projection (aliases work); otherwise it runs
  // before it, against the source columns.
  bool sort_before_projection = false;
  if (!stmt.order_by.empty()) {
    std::vector<std::string> output_names;
    for (const SelectItem& item : stmt.items) {
      if (!item.star) output_names.push_back(item.alias);
    }
    for (const SortKey& key : stmt.order_by) {
      bool in_output = false;
      for (const auto& name : output_names) {
        if (name == key.column) in_output = true;
      }
      if (!in_output && !(stmt.items.size() == 1 && stmt.items[0].star)) {
        sort_before_projection = true;
      }
    }
  }
  if (sort_before_projection && !has_aggregate && stmt.group_by.empty()) {
    plan = Sort(plan, stmt.order_by);
  }

  if (has_aggregate || !stmt.group_by.empty()) {
    std::vector<AggregateItem> aggs;
    for (const SelectItem& item : stmt.items) {
      if (item.is_aggregate) {
        aggs.push_back(AggregateItem{item.alias, item.agg_func,
                                     item.agg_input});
      } else if (item.star) {
        return Status::InvalidArgument("SELECT * cannot mix with aggregates");
      }
      // Non-aggregate items must be GROUP BY columns; the aggregate node
      // outputs the group columns first, so they are available by name.
    }
    plan = Aggregate(plan, stmt.group_by, std::move(aggs));
    // Re-project when the statement lists group columns in a custom order
    // or aliases them.
    bool needs_projection = false;
    bool having_applied = false;
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate && !item.star) needs_projection = true;
    }
    if (needs_projection) {
      std::vector<ProjectionItem> proj;
      for (const SelectItem& item : stmt.items) {
        if (item.is_aggregate) {
          proj.push_back({item.alias, Col(item.alias), DataType::kNull});
        } else {
          proj.push_back({item.alias, item.expr, DataType::kNull});
        }
      }
      plan = Project(plan, std::move(proj));
    }
    if (stmt.having != nullptr && !having_applied) {
      plan = Filter(plan, stmt.having);
      having_applied = true;
    }
  } else if (!(stmt.items.size() == 1 && stmt.items[0].star)) {
    std::vector<ProjectionItem> proj;
    for (const SelectItem& item : stmt.items) {
      proj.push_back({item.alias, item.expr, DataType::kNull});
    }
    plan = Project(plan, std::move(proj));
  }

  if (stmt.distinct) plan = Distinct(plan);
  if (!stmt.order_by.empty() && !sort_before_projection) {
    plan = Sort(plan, stmt.order_by);
  }
  if (stmt.limit.has_value()) plan = Limit(plan, *stmt.limit);

  SqlResult result;
  result.is_query = true;
  DIP_ASSIGN_OR_RETURN(result.rows, plan->Execute(&last_exec_));
  return result;
}

Result<SqlResult> SqlEngine::ExecuteInsert(const InsertStmt& stmt) {
  DIP_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema();
  // Column mapping: listed columns or full schema order.
  std::vector<size_t> target_idx;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) target_idx.push_back(i);
  } else {
    for (const auto& col : stmt.columns) {
      DIP_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndexOf(col));
      target_idx.push_back(idx);
    }
  }
  SqlResult result;
  if (stmt.select != nullptr) {
    // INSERT INTO ... SELECT: positional mapping of the query's columns.
    DIP_ASSIGN_OR_RETURN(SqlResult selected, ExecuteSelect(*stmt.select));
    for (const Row& src : selected.rows.rows) {
      if (src.size() != target_idx.size()) {
        return Status::InvalidArgument("SELECT arity mismatch for INSERT");
      }
      Row row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < src.size(); ++i) {
        DIP_ASSIGN_OR_RETURN(Value v,
                             src[i].CastTo(schema.column(target_idx[i]).type));
        row[target_idx[i]] = std::move(v);
      }
      DIP_RETURN_NOT_OK(table->Insert(std::move(row)));
      ++result.affected;
    }
    return result;
  }
  Schema empty;
  Row none;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != target_idx.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      DIP_ASSIGN_OR_RETURN(Value v, value_exprs[i]->Eval(none, empty));
      DIP_ASSIGN_OR_RETURN(v, v.CastTo(schema.column(target_idx[i]).type));
      row[target_idx[i]] = std::move(v);
    }
    DIP_RETURN_NOT_OK(table->Insert(std::move(row)));
    ++result.affected;
    ++last_exec_.rows_processed;
  }
  return result;
}

Result<SqlResult> SqlEngine::ExecuteUpdate(const UpdateStmt& stmt) {
  DIP_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema schema = table->schema();
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    DIP_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndexOf(col));
    sets.emplace_back(idx, expr);
  }
  // Evaluate the predicate and the assignments against the OLD row.
  Status eval_error;
  auto pred = [&](const Row& row) {
    if (stmt.where == nullptr) return true;
    auto keep = stmt.where->Eval(row, schema);
    if (!keep.ok()) {
      eval_error = keep.status();
      return false;
    }
    return !keep->is_null() && keep->type() == DataType::kBool &&
           keep->AsBool();
  };
  auto apply = [&](Row* row) {
    Row old = *row;
    for (const auto& [idx, expr] : sets) {
      auto v = expr->Eval(old, schema);
      if (!v.ok()) {
        eval_error = v.status();
        return;
      }
      auto cast = v->CastTo(schema.column(idx).type);
      if (!cast.ok()) {
        eval_error = cast.status();
        return;
      }
      (*row)[idx] = std::move(*cast);
    }
  };
  DIP_ASSIGN_OR_RETURN(size_t updated, table->UpdateWhere(pred, apply));
  DIP_RETURN_NOT_OK(eval_error);
  SqlResult result;
  result.affected = updated;
  last_exec_.rows_processed += updated;
  return result;
}

Result<SqlResult> SqlEngine::ExecuteDelete(const DeleteStmt& stmt) {
  DIP_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema schema = table->schema();
  Status eval_error;
  size_t removed = table->DeleteWhere([&](const Row& row) {
    if (stmt.where == nullptr) return true;
    auto keep = stmt.where->Eval(row, schema);
    if (!keep.ok()) {
      eval_error = keep.status();
      return false;
    }
    return !keep->is_null() && keep->type() == DataType::kBool &&
           keep->AsBool();
  });
  DIP_RETURN_NOT_OK(eval_error);
  SqlResult result;
  result.affected = removed;
  last_exec_.rows_processed += removed;
  return result;
}

Result<SqlResult> SqlEngine::ExecuteCreate(const CreateTableStmt& stmt) {
  Schema schema;
  for (const ColumnDef& def : stmt.columns) {
    schema.AddColumn(def.name, def.type, !def.not_null);
  }
  schema.SetPrimaryKey(stmt.primary_key);
  // Reject unknown primary-key columns (SetPrimaryKey silently skips them).
  if (schema.primary_key().size() != stmt.primary_key.size()) {
    return Status::InvalidArgument("PRIMARY KEY names unknown column");
  }
  DIP_RETURN_NOT_OK(db_->CreateTable(stmt.table, std::move(schema)).status());
  return SqlResult{};
}

Result<net::QueryOp> SqlQueryOp(const std::string& select_statement) {
  DIP_ASSIGN_OR_RETURN(Statement stmt, ParseSql(select_statement));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("SqlQueryOp needs a SELECT statement");
  }
  auto shared = std::make_shared<Statement>(std::move(stmt));
  return net::QueryOp(
      [shared](Database* db, const std::vector<Value>&) -> Result<RowSet> {
        SqlEngine engine(db);
        DIP_ASSIGN_OR_RETURN(SqlResult result, engine.Execute(*shared));
        return std::move(result.rows);
      });
}

}  // namespace sql
}  // namespace dipbench
