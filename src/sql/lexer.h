#ifndef DIPBENCH_SQL_LEXER_H_
#define DIPBENCH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace dipbench {
namespace sql {

enum class TokenType {
  kIdentifier,  ///< unquoted name (keywords are classified by the parser)
  kNumber,      ///< integer or decimal literal
  kString,      ///< single-quoted string literal (unescaped)
  kSymbol,      ///< operator or punctuation: ( ) , . * = != <> < <= > >= + - / %
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< identifier upper-cased; symbols verbatim
  std::string raw;   ///< original spelling (for identifiers / errors)
  size_t offset = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Keyword / identifier comparison (case-insensitive via upper-casing).
  bool IsWord(const char* word) const {
    return type == TokenType::kIdentifier && text == word;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Splits a SQL string into tokens. Comments (`-- ...`) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace dipbench

#endif  // DIPBENCH_SQL_LEXER_H_
