#ifndef DIPBENCH_TYPES_SCHEMA_H_
#define DIPBENCH_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/types/value.h"

namespace dipbench {

/// A single column definition.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  bool nullable = true;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered list of columns plus an optional primary key (column indexes).
/// Schemas are value types — cheap to copy for the table sizes this
/// benchmark uses — and are shared by tables, result sets and messages.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns,
                  std::vector<size_t> primary_key = {})
      : columns_(std::move(columns)), primary_key_(std::move(primary_key)) {}

  /// Builder-style helpers.
  Schema& AddColumn(std::string name, DataType type, bool nullable = true) {
    columns_.push_back(Column{std::move(name), type, nullable});
    return *this;
  }
  /// Declares the primary key by column names. Unknown names are ignored
  /// here and caught by Validate().
  Schema& SetPrimaryKey(const std::vector<std::string>& names);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<size_t>& primary_key() const { return primary_key_; }

  /// Index of the named column, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;
  /// Index of the named column, or an error mentioning the name.
  Result<size_t> RequireIndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  /// Checks column-name uniqueness and primary-key index validity.
  Status Validate() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_ && primary_key_ == other.primary_key_;
  }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<size_t> primary_key_;
};

/// A tuple: one Value per schema column. Rows do not carry their schema;
/// the containing table / operator provides it.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive), consistent with Value::Hash.
size_t HashRow(const Row& row);

/// Hash of selected row fields (for join keys and DISTINCT keys).
size_t HashRowKey(const Row& row, const std::vector<size_t>& key_indexes);

/// Field-wise equality via Value::Compare.
bool RowsEqual(const Row& a, const Row& b);

/// Renders a row as comma-separated values.
std::string RowToString(const Row& row);

}  // namespace dipbench

#endif  // DIPBENCH_TYPES_SCHEMA_H_
