#include "src/types/schema.h"

#include <unordered_set>

#include "src/common/string_util.h"

namespace dipbench {

Schema& Schema::SetPrimaryKey(const std::vector<std::string>& names) {
  primary_key_.clear();
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (idx.has_value()) primary_key_.push_back(*idx);
  }
  return *this;
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireIndexOf(const std::string& name) const {
  auto idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound("no such column: " + name);
  }
  return *idx;
}

Status Schema::Validate() const {
  std::unordered_set<std::string> seen;
  for (const auto& c : columns_) {
    if (c.name.empty()) return Status::InvalidArgument("empty column name");
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column: " + c.name);
    }
  }
  for (size_t idx : primary_key_) {
    if (idx >= columns_.size()) {
      return Status::InvalidArgument("primary key index out of range");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + std::string(":") + DataTypeToString(c.type));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678;
  for (const auto& v : row) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

size_t HashRowKey(const Row& row, const std::vector<size_t>& key_indexes) {
  size_t h = 0x345678;
  for (size_t i : key_indexes) {
    h = h * 1000003 ^ (i < row.size() ? row[i].Hash() : 0);
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::vector<std::string> parts;
  parts.reserve(row.size());
  for (const auto& v : row) parts.push_back(v.ToString());
  return StrJoin(parts, ",");
}

}  // namespace dipbench
