#include "src/types/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "src/common/string_util.h"

namespace dipbench {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type_) {
    case DataType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kDate:
      return static_cast<double>(AsDate());
    default:
      return Status::TypeMismatch(std::string("not numeric: ") +
                                  DataTypeToString(type_));
  }
}

Result<int64_t> Value::ToInt() const {
  switch (type_) {
    case DataType::kBool:
      return AsBool() ? int64_t{1} : int64_t{0};
    case DataType::kInt64:
      return AsInt();
    case DataType::kDate:
      return AsDate();
    case DataType::kDouble: {
      double d = AsDouble();
      if (d != std::floor(d)) {
        return Status::TypeMismatch("double has fractional part");
      }
      return static_cast<int64_t>(d);
    }
    default:
      return Status::TypeMismatch(std::string("not integral: ") +
                                  DataTypeToString(type_));
  }
}

Result<Value> Value::CastTo(DataType target) const {
  if (type_ == target) return *this;
  if (is_null()) return Value::Null();
  switch (target) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      DIP_ASSIGN_OR_RETURN(double d, ToNumeric());
      return Value::Bool(d != 0.0);
    }
    case DataType::kInt64: {
      if (type_ == DataType::kString) {
        return Parse(AsString(), DataType::kInt64);
      }
      DIP_ASSIGN_OR_RETURN(double d, ToNumeric());
      return Value::Int(static_cast<int64_t>(d));
    }
    case DataType::kDouble: {
      if (type_ == DataType::kString) {
        return Parse(AsString(), DataType::kDouble);
      }
      DIP_ASSIGN_OR_RETURN(double d, ToNumeric());
      return Value::Double(d);
    }
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kDate: {
      if (type_ == DataType::kString) return Parse(AsString(), DataType::kDate);
      DIP_ASSIGN_OR_RETURN(int64_t i, ToInt());
      return Value::Date(i);
    }
  }
  return Status::TypeMismatch("unsupported cast");
}

Result<int64_t> Value::DateYear() const {
  if (type_ != DataType::kDate) return Status::TypeMismatch("not a date");
  return AsDate() / 10000;
}

Result<int64_t> Value::DateMonth() const {
  if (type_ != DataType::kDate) return Status::TypeMismatch("not a date");
  return (AsDate() / 100) % 100;
}

Result<int64_t> Value::DateDay() const {
  if (type_ != DataType::kDate) return Status::TypeMismatch("not a date");
  return AsDate() % 100;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      std::string s = StrFormat("%.6g", AsDouble());
      return s;
    }
    case DataType::kString:
      return AsString();
    case DataType::kDate:
      return std::to_string(AsDate());
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, DataType target) {
  switch (target) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      std::string lower = StrLower(StrTrim(text));
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return Status::ParseError("not a bool: " + text);
    }
    case DataType::kInt64:
    case DataType::kDate: {
      std::string t(StrTrim(text));
      if (t.empty()) return Value::Null();
      char* end = nullptr;
      long long v = std::strtoll(t.c_str(), &end, 10);
      if (end == t.c_str() || *end != '\0') {
        return Status::ParseError("not an integer: " + text);
      }
      return target == DataType::kInt64 ? Value::Int(v) : Value::Date(v);
    }
    case DataType::kDouble: {
      std::string t(StrTrim(text));
      if (t.empty()) return Value::Null();
      char* end = nullptr;
      double v = std::strtod(t.c_str(), &end);
      if (end == t.c_str() || *end != '\0') {
        return Status::ParseError("not a double: " + text);
      }
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(text);
  }
  return Status::ParseError("unknown target type");
}

namespace {

bool IsNumericFamily(DataType t) {
  return t == DataType::kBool || t == DataType::kInt64 ||
         t == DataType::kDouble || t == DataType::kDate;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (IsNumericFamily(type_) && IsNumericFamily(other.type_)) {
    double a = *ToNumeric();
    double b = *other.ToNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return AsString().compare(other.AsString());
  }
  // Heterogeneous non-comparable types: order by type tag for determinism.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9E3779B9u;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate: {
      // Hash via the numeric value so 1 == 1.0 hash-agree with Compare().
      double d = *ToNumeric();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type_) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return 8;
    case DataType::kString:
      return AsString().size() + 4;
  }
  return 0;
}

}  // namespace dipbench
