#ifndef DIPBENCH_TYPES_COLUMN_H_
#define DIPBENCH_TYPES_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"

namespace dipbench {

/// One column of a relation chunk in columnar (struct-of-arrays) layout.
///
/// The representation is chosen from the data: integer-family values
/// (int64/date/bool) land in a contiguous int64 array, doubles in a double
/// array, and strings are dictionary-encoded (codes + first-appearance
/// dictionary, deduplicated so code equality is string equality). A column
/// that turns out to be type-mixed degrades to a plain Value array, which
/// keeps every consumer correct — kernels just lose their tight loop.
/// NULLs live in a lazily allocated byte map; the typed arrays hold
/// placeholders at null slots.
///
/// Values round-trip exactly: GetValue(i) reconstructs the Value that was
/// appended (type included), which is what the row/column conversion shims
/// and the determinism contract rely on.
class ColumnVector {
 public:
  enum class Rep : uint8_t { kEmpty, kInt, kDouble, kDict, kValue };

  void Reserve(size_t n);
  void Append(const Value& v);

  size_t size() const { return size_; }
  Rep rep() const { return rep_; }
  /// Uniform type of the non-null values (kInt64/kDate/kBool for kInt,
  /// kDouble, kString for kDict). kNull for kEmpty/kValue representations.
  DataType value_type() const { return value_type_; }

  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  /// Raw array views; valid only for the matching representation.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const int32_t* codes() const { return codes_.data(); }
  const std::vector<std::string>& dict() const { return dict_; }
  /// Dictionary code of `s`, or -1 when the string never appeared.
  int32_t FindDictCode(const std::string& s) const;

  /// Reconstructs the i-th cell as a Value (exact type round trip).
  Value GetValue(size_t i) const;

  /// Approximate footprint in bytes (budget accounting).
  size_t ByteSize() const;

 private:
  void DecideRep(const Value& v);
  void DegradeToValues();
  void EnsureNulls();

  Rep rep_ = Rep::kEmpty;
  DataType value_type_ = DataType::kNull;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_lookup_;
  std::vector<Value> values_;
  std::vector<uint8_t> nulls_;  ///< empty = no nulls so far
};

/// A fully materialized relation in columnar layout: one ColumnVector per
/// schema column, shared immutably (shared_ptr) so batches and cached table
/// snapshots can alias the same physical arrays.
struct ColumnFrame {
  Schema schema;
  std::vector<std::shared_ptr<ColumnVector>> columns;
  size_t num_rows = 0;

  size_t ByteSize() const;
};

/// Builds a ColumnFrame row by row (table snapshots, tests).
class ColumnFrameBuilder {
 public:
  explicit ColumnFrameBuilder(Schema schema);
  void Reserve(size_t rows);
  void AddRow(const Row& row);
  std::shared_ptr<const ColumnFrame> Finish();

 private:
  std::shared_ptr<ColumnFrame> frame_;
};

/// One chunk of rows flowing through a columnar cursor chain: shared
/// physical columns plus either a contiguous window [offset, offset+length)
/// or an explicit ascending selection vector of physical row indices.
/// Filters narrow the selection without copying any cell.
struct ColumnBatch {
  std::vector<std::shared_ptr<const ColumnVector>> columns;
  size_t offset = 0;
  size_t length = 0;
  bool has_sel = false;
  std::vector<uint32_t> sel;

  size_t size() const { return has_sel ? sel.size() : length; }
  bool empty() const { return size() == 0; }
  /// Physical row index of logical row i.
  uint32_t phys(size_t i) const {
    return has_sel ? sel[i] : static_cast<uint32_t>(offset + i);
  }
  void clear() {
    columns.clear();
    offset = 0;
    length = 0;
    has_sel = false;
    sel.clear();
  }
};

/// Reconstructs logical row i of the batch as a Row.
Row MaterializeColumnRow(const ColumnBatch& batch, size_t i);
/// Appends every logical row of the batch to *out (the row/column shim).
void AppendColumnRows(const ColumnBatch& batch, std::vector<Row>* out);

}  // namespace dipbench

#endif  // DIPBENCH_TYPES_COLUMN_H_
