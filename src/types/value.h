#ifndef DIPBENCH_TYPES_VALUE_H_
#define DIPBENCH_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/result.h"
#include "src/common/status.h"

namespace dipbench {

/// Column data types supported by the storage engine. kDate is stored as an
/// int32 day key in YYYYMMDD form (the DWH time dimension uses the built-in
/// extraction functions Day()/Month()/Year() on it, as in paper Fig. 3).
enum class DataType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

const char* DataTypeToString(DataType t);

/// A dynamically typed cell value. Values are ordered within the same type
/// family (integers and doubles compare numerically with each other); NULL
/// compares less than every non-NULL value, and NULL == NULL holds for the
/// purposes of DISTINCT/GROUP BY (SQL semantics are intentionally simplified
/// to keep the engine deterministic).
class Value {
 public:
  Value() : type_(DataType::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = DataType::kBool;
    v.data_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = DataType::kInt64;
    v.data_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = DataType::kDouble;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.data_ = std::move(s);
    return v;
  }
  /// `yyyymmdd` e.g. 20080412.
  static Value Date(int64_t yyyymmdd) {
    Value v;
    v.type_ = DataType::kDate;
    v.data_ = yyyymmdd;
    return v;
  }
  static Value DateYmd(int year, int month, int day) {
    return Date(int64_t(year) * 10000 + month * 100 + day);
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  int64_t AsDate() const { return std::get<int64_t>(data_); }

  /// Numeric view: int64/double/bool/date widen to double; errors otherwise.
  Result<double> ToNumeric() const;
  /// Integer view: int64/bool/date; a double must be integral.
  Result<int64_t> ToInt() const;

  /// Best-effort cast used by projections and the data generator.
  Result<Value> CastTo(DataType target) const;

  /// Date component extraction (paper Fig. 3's built-in time dimension).
  /// Errors unless type is kDate.
  Result<int64_t> DateYear() const;
  Result<int64_t> DateMonth() const;
  Result<int64_t> DateDay() const;

  /// Render for messages/CSV. NULL renders as empty string.
  std::string ToString() const;

  /// Parses a textual representation into the requested type.
  static Result<Value> Parse(const std::string& text, DataType target);

  /// Total ordering used by indexes, sort and DISTINCT. NULL sorts first.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (numeric family hashes by
  /// double representation of the value).
  size_t Hash() const;

  /// Approximate in-memory footprint in bytes; used for communication-cost
  /// accounting (bytes shipped over simulated channels).
  size_t ByteSize() const;

 private:
  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dipbench

#endif  // DIPBENCH_TYPES_VALUE_H_
