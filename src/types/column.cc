#include "src/types/column.h"

namespace dipbench {

namespace {
bool IsIntFamily(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDate || t == DataType::kBool;
}

int64_t IntPayload(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return v.AsInt();
    case DataType::kDate:
      return v.AsDate();
    case DataType::kBool:
      return v.AsBool() ? 1 : 0;
    default:
      return 0;
  }
}
}  // namespace

void ColumnVector::Reserve(size_t n) {
  switch (rep_) {
    case Rep::kInt:
      ints_.reserve(n);
      break;
    case Rep::kDouble:
      doubles_.reserve(n);
      break;
    case Rep::kDict:
      codes_.reserve(n);
      break;
    case Rep::kValue:
      values_.reserve(n);
      break;
    case Rep::kEmpty:
      break;
  }
}

void ColumnVector::EnsureNulls() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void ColumnVector::DecideRep(const Value& v) {
  // First non-null value decides the representation; `size_` leading nulls
  // (all recorded in nulls_) get placeholder slots backfilled.
  value_type_ = v.type();
  if (IsIntFamily(v.type())) {
    rep_ = Rep::kInt;
    ints_.assign(size_, 0);
  } else if (v.type() == DataType::kDouble) {
    rep_ = Rep::kDouble;
    doubles_.assign(size_, 0.0);
  } else if (v.type() == DataType::kString) {
    rep_ = Rep::kDict;
    codes_.assign(size_, -1);
  } else {
    rep_ = Rep::kValue;
    value_type_ = DataType::kNull;
    values_.assign(size_, Value::Null());
  }
}

void ColumnVector::DegradeToValues() {
  std::vector<Value> vals;
  vals.reserve(size_);
  for (size_t i = 0; i < size_; ++i) vals.push_back(GetValue(i));
  rep_ = Rep::kValue;
  value_type_ = DataType::kNull;
  values_ = std::move(vals);
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.clear();
  dict_lookup_.clear();
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    EnsureNulls();
    nulls_.push_back(1);
    switch (rep_) {
      case Rep::kInt:
        ints_.push_back(0);
        break;
      case Rep::kDouble:
        doubles_.push_back(0.0);
        break;
      case Rep::kDict:
        codes_.push_back(-1);
        break;
      case Rep::kValue:
        values_.push_back(Value::Null());
        break;
      case Rep::kEmpty:
        break;  // rep still undecided; size_ tracks the slot
    }
    ++size_;
    return;
  }
  if (rep_ == Rep::kEmpty) DecideRep(v);
  if (rep_ != Rep::kValue && v.type() != value_type_) DegradeToValues();
  if (!nulls_.empty()) nulls_.push_back(0);
  switch (rep_) {
    case Rep::kInt:
      ints_.push_back(IntPayload(v));
      break;
    case Rep::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case Rep::kDict: {
      const std::string& s = v.AsString();
      auto [it, inserted] = dict_lookup_.try_emplace(
          s, static_cast<int32_t>(dict_.size()));
      if (inserted) dict_.push_back(s);
      codes_.push_back(it->second);
      break;
    }
    case Rep::kValue:
      values_.push_back(v);
      break;
    case Rep::kEmpty:
      break;  // unreachable: DecideRep always leaves a concrete rep
  }
  ++size_;
}

int32_t ColumnVector::FindDictCode(const std::string& s) const {
  auto it = dict_lookup_.find(s);
  return it == dict_lookup_.end() ? -1 : it->second;
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (rep_) {
    case Rep::kInt:
      switch (value_type_) {
        case DataType::kInt64:
          return Value::Int(ints_[i]);
        case DataType::kDate:
          return Value::Date(ints_[i]);
        case DataType::kBool:
          return Value::Bool(ints_[i] != 0);
        default:
          return Value::Null();
      }
    case Rep::kDouble:
      return Value::Double(doubles_[i]);
    case Rep::kDict:
      return Value::String(dict_[codes_[i]]);
    case Rep::kValue:
      return values_[i];
    case Rep::kEmpty:
      return Value::Null();
  }
  return Value::Null();
}

size_t ColumnVector::ByteSize() const {
  size_t total = nulls_.size() + ints_.size() * 8 + doubles_.size() * 8 +
                 codes_.size() * 4;
  for (const auto& s : dict_) total += s.size() + 32;
  for (const auto& v : values_) total += v.ByteSize() + 16;
  return total;
}

size_t ColumnFrame::ByteSize() const {
  size_t total = 0;
  for (const auto& c : columns) total += c->ByteSize();
  return total;
}

ColumnFrameBuilder::ColumnFrameBuilder(Schema schema)
    : frame_(std::make_shared<ColumnFrame>()) {
  frame_->schema = std::move(schema);
  frame_->columns.reserve(frame_->schema.num_columns());
  for (size_t i = 0; i < frame_->schema.num_columns(); ++i) {
    frame_->columns.push_back(std::make_shared<ColumnVector>());
  }
}

void ColumnFrameBuilder::Reserve(size_t rows) {
  for (auto& c : frame_->columns) c->Reserve(rows);
}

void ColumnFrameBuilder::AddRow(const Row& row) {
  const size_t n = frame_->columns.size();
  for (size_t c = 0; c < n; ++c) {
    frame_->columns[c]->Append(c < row.size() ? row[c] : Value::Null());
  }
  ++frame_->num_rows;
}

std::shared_ptr<const ColumnFrame> ColumnFrameBuilder::Finish() {
  return std::move(frame_);
}

Row MaterializeColumnRow(const ColumnBatch& batch, size_t i) {
  Row row;
  row.reserve(batch.columns.size());
  const uint32_t p = batch.phys(i);
  for (const auto& col : batch.columns) row.push_back(col->GetValue(p));
  return row;
}

void AppendColumnRows(const ColumnBatch& batch, std::vector<Row>* out) {
  const size_t n = batch.size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(MaterializeColumnRow(batch, i));
}

}  // namespace dipbench
