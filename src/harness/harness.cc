#include "src/harness/harness.h"

#include <atomic>
#include <exception>
#include <thread>

#include "src/common/string_util.h"
#include "src/storage/spill.h"

namespace dipbench {
namespace harness {

std::string RunSpec::DisplayLabel() const {
  if (!label.empty()) return label;
  std::string out = engine + " d=" + StrFormat("%.3g", config.datasize) +
                    " f=" + DistributionToString(config.distribution);
  if (config.fault_rate > 0.0) {
    out += StrFormat(" q=%.3g", config.fault_rate);
  }
  return out;
}

Result<std::unique_ptr<core::EngineBase>> MakeEngine(const std::string& name,
                                                     net::Network* network,
                                                     int worker_slots) {
  if (name == "federated") {
    return std::unique_ptr<core::EngineBase>(new core::FederatedEngine(
        network, core::FederatedWeights(), worker_slots));
  }
  if (name == "dataflow") {
    return std::unique_ptr<core::EngineBase>(new core::DataflowEngine(
        network, core::DataflowWeights(), worker_slots));
  }
  if (name == "eai") {
    return std::unique_ptr<core::EngineBase>(
        new core::EaiEngine(network, core::EaiWeights(), worker_slots));
  }
  return Status::InvalidArgument("unknown engine realization '" + name +
                                 "' (federated | dataflow | eai)");
}

RunnerPool::RunnerPool(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

RunOutcome RunnerPool::ExecuteOne(const RunSpec& spec) {
  RunOutcome out;
  out.spec = spec;
  StopWatch watch;

  // Per-spec exec-mode override (conformance matrix cells); RAII restores
  // the thread's prior mode so co-scheduled specs on this thread are
  // unaffected.
  std::optional<ScopedExecMode> scoped_mode;
  if (spec.exec_mode) scoped_mode.emplace(*spec.exec_mode);

  auto scenario_result = Scenario::Create();
  if (!scenario_result.ok()) {
    out.error = scenario_result.status().ToString();
    out.wall_ms = watch.ElapsedMillis();
    return out;
  }
  std::unique_ptr<Scenario> scenario = std::move(scenario_result).ValueOrDie();

  auto engine_result =
      MakeEngine(spec.engine, scenario->network(), spec.config.worker_slots);
  if (!engine_result.ok()) {
    out.error = engine_result.status().ToString();
    out.wall_ms = watch.ElapsedMillis();
    return out;
  }
  std::unique_ptr<core::EngineBase> engine =
      std::move(engine_result).ValueOrDie();

  Client client(scenario.get(), engine.get(), spec.config);
  if (spec.observe) {
    out.trace = std::make_shared<obs::TraceRecorder>();
    out.metrics = std::make_shared<obs::MetricsRegistry>();
    obs::ObsContext obs(out.trace.get(), out.metrics.get());
    engine->SetObserver(obs);
    scenario->network()->SetObserver(obs);
    client.SetObserver(obs);
  }

  auto run_result = client.Run();
  if (spec.keep_records) out.records = engine->records();
  if (run_result.ok()) {
    out.ok = true;
    out.result = std::move(run_result).ValueOrDie();
    out.monitor_csv = Monitor::ToCsv(out.result.per_process);
  } else {
    out.error = run_result.status().ToString();
  }

  if (spec.post_run_mutator) spec.post_run_mutator(scenario.get());
  if (spec.digest_state) {
    auto digest = std::make_shared<conformance::StateDigest>(
        conformance::CaptureStateDigest(scenario.get()));
    digest->run_ok = out.ok;
    digest->run_error = out.error;
    if (out.ok) {
      digest->monitor_csv = out.monitor_csv;
      digest->verification = out.result.verification.ToString();
      digest->retries = out.result.retries;
      digest->dead_letters = out.result.dead_letters;
    }
    out.digest = std::move(digest);
  }

  out.wall_ms = watch.ElapsedMillis();
  return out;
}

std::vector<RunOutcome> RunnerPool::Run(const std::vector<RunSpec>& specs) {
  std::vector<std::function<RunOutcome()>> tasks;
  tasks.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    tasks.push_back([spec] { return ExecuteOne(spec); });
  }
  return RunTasks(std::move(tasks));
}

std::vector<RunOutcome> RunnerPool::RunTasks(
    std::vector<std::function<RunOutcome()>> tasks) {
  std::vector<RunOutcome> outcomes(tasks.size());

  // Every job runs under the exec mode and operator memory budget active on
  // the submitting thread — both are thread-local (src/ra/plan.h,
  // src/storage/spill.h), so fresh pool threads would otherwise silently
  // fall back to the defaults.
  const ExecMode mode = CurrentExecMode();
  const size_t budget = CurrentMemoryBudget();
  auto run_task = [&](size_t i) {
    ScopedExecMode scoped(mode);
    ScopedMemoryBudget scoped_budget(budget);
    try {
      outcomes[i] = tasks[i]();
    } catch (const std::exception& e) {
      // A throwing run is an outcome, not a pool failure: record it and
      // keep draining — co-scheduled runs are isolated by construction.
      outcomes[i] = RunOutcome();
      outcomes[i].error = std::string("uncaught exception: ") + e.what();
    } catch (...) {
      outcomes[i] = RunOutcome();
      outcomes[i].error = "uncaught non-standard exception";
    }
  };

  if (jobs_ <= 1 || tasks.size() <= 1) {
    // Legacy serial sweep: no threads, calling-thread execution.
    for (size_t i = 0; i < tasks.size(); ++i) run_task(i);
    return outcomes;
  }

  std::atomic<size_t> next{0};
  size_t n_threads = std::min(static_cast<size_t>(jobs_), tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= outcomes.size()) return;
        run_task(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return outcomes;
}

std::string RunnerPool::RenderReport(const std::vector<RunOutcome>& outcomes,
                                     double pool_wall_ms) {
  std::string out;
  out += StrFormat("%-28s %10s %10s %10s %12s %8s %12s %10s\n", "config",
                   "P03 NAVG+", "P09 NAVG+", "P13 NAVG+", "sum NAVG+",
                   "retries", "dead_letters", "wall ms");
  double summed_wall_ms = 0.0;
  for (const RunOutcome& o : outcomes) {
    summed_wall_ms += o.wall_ms;
    if (!o.ok) {
      out += StrFormat("%-28s FAILED: %s\n", o.spec.DisplayLabel().c_str(),
                       o.error.c_str());
      continue;
    }
    double total = 0.0;
    for (const auto& m : o.result.per_process) total += m.navg_plus_tu;
    out += StrFormat(
        "%-28s %10.1f %10.1f %10.1f %12.1f %8llu %12llu %10.0f\n",
        o.spec.DisplayLabel().c_str(), o.result.NavgPlus("P03"),
        o.result.NavgPlus("P09"), o.result.NavgPlus("P13"), total,
        static_cast<unsigned long long>(o.result.retries),
        static_cast<unsigned long long>(o.result.dead_letters), o.wall_ms);
  }
  if (pool_wall_ms > 0.0 && summed_wall_ms > 0.0) {
    out += StrFormat(
        "pool wall-clock %.0f ms for %.0f ms of runs — %.2fx speedup\n",
        pool_wall_ms, summed_wall_ms, summed_wall_ms / pool_wall_ms);
  }
  return out;
}

}  // namespace harness
}  // namespace dipbench
