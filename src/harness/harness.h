#ifndef DIPBENCH_HARNESS_HARNESS_H_
#define DIPBENCH_HARNESS_HARNESS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/conformance/digest.h"
#include "src/dipbench/client.h"
#include "src/obs/obs.h"
#include "src/ra/plan.h"

namespace dipbench {
namespace harness {

/// One benchmark configuration for the pool: scale factors + seed (inside
/// the ScaleConfig) and the engine realization to drive. Sweeps are
/// families of RunSpecs differing in exactly one knob (paper §V, DWEB's
/// parameterized run generator).
struct RunSpec {
  ScaleConfig config;
  /// Engine realization: "federated" (default), "dataflow" or "eai".
  std::string engine = "federated";
  /// Display label in the merged report; empty derives one from the spec.
  std::string label;
  /// Attach a per-run obs::TraceRecorder + MetricsRegistry (each run gets
  /// its OWN pair — the obs layer's ownership contract) and hand them back
  /// in the outcome.
  bool observe = false;
  /// Copy the engine's InstanceRecords into the outcome (cross-run
  /// diagnostics such as the concurrency sweep-line cross-check).
  bool keep_records = false;
  /// Per-run plan execution mode. The pool normally re-applies the
  /// submitting thread's thread-local mode to every job; a set value
  /// overrides that for this run only (the conformance matrix runs one
  /// spec list across all three modes).
  std::optional<ExecMode> exec_mode;
  /// Capture a conformance::StateDigest of the final landscape (plus
  /// monitor/verification/recovery/run-outcome) into the outcome. The
  /// Scenario dies with ExecuteOne, so this is the only way to observe its
  /// final state from outside.
  bool digest_state = false;
  /// Test hook, called on the live Scenario after the run (success or
  /// failure) and BEFORE digest capture — the fuzzer's self-test injects a
  /// single-cell divergence here to prove the pipeline catches it.
  std::function<void(Scenario*)> post_run_mutator;

  std::string DisplayLabel() const;
};

/// What one pooled run produced. Outcomes are always delivered in
/// submission order, independent of which thread ran what.
struct RunOutcome {
  RunSpec spec;
  bool ok = false;
  std::string error;          ///< Status/exception text when !ok.
  BenchmarkResult result;     ///< Valid when ok.
  std::string monitor_csv;    ///< Monitor::ToCsv of the result (when ok).
  std::vector<core::InstanceRecord> records;      ///< When keep_records.
  std::shared_ptr<obs::TraceRecorder> trace;      ///< When observe.
  std::shared_ptr<obs::MetricsRegistry> metrics;  ///< When observe.
  /// When spec.digest_state: full canonical digest of the run (landscape,
  /// monitor CSV, verification, recovery counters, run outcome). Shared —
  /// digests can be large and outcomes get copied into reports.
  std::shared_ptr<const conformance::StateDigest> digest;
  double wall_ms = 0.0;       ///< This run's own wall-clock time.
};

/// Builds the engine realization named by RunSpec::engine over `network`,
/// with the ScaleConfig's worker slots.
Result<std::unique_ptr<core::EngineBase>> MakeEngine(const std::string& name,
                                                     net::Network* network,
                                                     int worker_slots);

/// Executes N independent benchmark configurations concurrently on OS
/// threads.
///
/// Isolation contract (what makes parallel == serial, byte for byte):
/// every run owns its complete world — Scenario (databases + network +
/// endpoints), engine, Client, Initializer and, when requested, trace
/// recorder and metrics registry. The only process-level state a run
/// touches is (a) the Logger, which is thread-safe at line granularity,
/// (b) the thread-local plan ExecMode, which the pool re-applies from the
/// submitting thread onto every job thread, and (c) FileStore's unique-
/// directory counter, which exists precisely to keep concurrent runs
/// apart on disk. All randomness is seeded from the RunSpec's config, so
/// a run's bytes depend only on its spec — never on co-scheduled runs,
/// thread identity, or jobs count.
///
/// With jobs == 1 the pool spawns no threads at all and executes the
/// specs sequentially on the calling thread — exactly the legacy serial
/// sweep loop.
class RunnerPool {
 public:
  /// jobs <= 0 selects std::thread::hardware_concurrency().
  explicit RunnerPool(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Runs every spec (fully isolated, see class doc); outcomes come back
  /// in submission order. A failing or throwing run yields ok == false
  /// with the error text and never poisons the other runs or the pool.
  std::vector<RunOutcome> Run(const std::vector<RunSpec>& specs);

  /// Lower-level form: arbitrary tasks through the same scheduling,
  /// ordering and exception-isolation machinery (exposed for tests and
  /// custom sweeps). Each task runs exactly once, on some pool thread.
  std::vector<RunOutcome> RunTasks(
      std::vector<std::function<RunOutcome()>> tasks);

  /// One fully isolated benchmark run: fresh Scenario + engine + Client
  /// (+ observer pair when spec.observe). The building block Run()
  /// schedules; also the jobs=1 path.
  static RunOutcome ExecuteOne(const RunSpec& spec);

  /// Merged cross-run report: per-config NAVG+ table (P03/P09/P13 columns
  /// plus the total), retries/dead letters, per-run wall-clock, and the
  /// aggregate speedup of `pool_wall_ms` over the summed per-run times.
  static std::string RenderReport(const std::vector<RunOutcome>& outcomes,
                                  double pool_wall_ms);

 private:
  int jobs_;
};

}  // namespace harness
}  // namespace dipbench

#endif  // DIPBENCH_HARNESS_HARNESS_H_
