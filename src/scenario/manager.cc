#include "src/scenario/manager.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "src/dipbench/scenario.h"
#include "src/net/endpoint.h"

namespace dipbench {
namespace scenario {

Status ScenarioManager::LoadFile(const std::string& path) {
  DIP_ASSIGN_OR_RETURN(ScenarioManifest manifest,
                       ScenarioManifest::Load(path));
  for (const ScenarioManifest& existing : manifests_) {
    if (existing.name == manifest.name) {
      return Status::AlreadyExists(
          path + ": manifest name '" + manifest.name +
          "' already loaded from " + existing.origin);
    }
  }
  manifests_.push_back(std::move(manifest));
  return Status::OK();
}

Status ScenarioManager::LoadDirectory(const std::string& dir) {
  std::error_code ec;
  auto iter = std::filesystem::directory_iterator(dir, ec);
  if (ec) {
    return Status::NotFound("cannot read scenario directory '" + dir +
                            "': " + ec.message());
  }
  std::vector<std::string> paths;
  for (const auto& entry : iter) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  if (paths.empty()) {
    return Status::NotFound("no *.json manifests in '" + dir + "'");
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    DIP_RETURN_NOT_OK(LoadFile(path));
  }
  return Status::OK();
}

Status ScenarioManager::ValidateLandscape() const {
  // One throwaway landscape: the authoritative name lists are whatever
  // Scenario::Create actually builds today.
  DIP_ASSIGN_OR_RETURN(std::unique_ptr<Scenario> landscape,
                       Scenario::Create());
  std::vector<std::string> endpoint_list =
      landscape->network()->ListEndpoints();
  std::set<std::string> endpoints(endpoint_list.begin(), endpoint_list.end());
  std::vector<std::string> db_list = landscape->DatabaseNames();
  std::set<std::string> databases(db_list.begin(), db_list.end());

  for (const ScenarioManifest& manifest : manifests_) {
    // Errors carry the origin:line:column of the offending entry — the
    // reader recorded each entry's position into key_positions precisely
    // because these checks run after parsing, against a live landscape.
    auto bad = [&](const std::string& what, const std::string& name,
                   const std::string& position_key) {
      std::string where = manifest.origin;
      auto it = manifest.key_positions.find(position_key);
      if (it != manifest.key_positions.end()) where += ": " + it->second;
      return Status::ValidationError(where + ": manifest '" +
                                     manifest.name + "': " + what + " '" +
                                     name + "' does not exist in the " +
                                     "system landscape");
    };
    for (const OutageWindow& outage : manifest.config.outages) {
      if (!outage.endpoint.empty() && endpoints.count(outage.endpoint) == 0) {
        return bad("outage '" + outage.name + "': endpoint",
                   outage.endpoint, "outage:" + outage.name);
      }
    }
    for (const ErrorPhaseSpec& phase : manifest.config.error_phases) {
      if (!phase.endpoint.empty() && endpoints.count(phase.endpoint) == 0) {
        return bad("phase '" + phase.name + "': endpoint", phase.endpoint,
                   "phase:" + phase.name);
      }
    }
    for (const auto& [source, rate] : manifest.config.source_error_rates) {
      (void)rate;
      if (databases.count(source) == 0) {
        return bad("dirtiness source", source, "dirtiness:" + source);
      }
    }
  }
  return Status::OK();
}

std::vector<harness::RunSpec> ScenarioManager::ExpandAll() const {
  std::vector<harness::RunSpec> specs;
  for (const ScenarioManifest& manifest : manifests_) {
    std::vector<harness::RunSpec> expanded = manifest.Expand();
    specs.insert(specs.end(), std::make_move_iterator(expanded.begin()),
                 std::make_move_iterator(expanded.end()));
  }
  return specs;
}

std::vector<harness::RunOutcome> ScenarioManager::RunAll(int jobs) const {
  harness::RunnerPool pool(jobs);
  return pool.Run(ExpandAll());
}

}  // namespace scenario
}  // namespace dipbench
