#ifndef DIPBENCH_SCENARIO_MANAGER_H_
#define DIPBENCH_SCENARIO_MANAGER_H_

#include <string>
#include <vector>

#include "src/harness/harness.h"
#include "src/scenario/manifest.h"

namespace dipbench {
namespace scenario {

/// Loads, validates and runs collections of scenario manifests.
///
/// The manager adds the checks a single manifest cannot do alone: name
/// uniqueness across the collection, and landscape validation — outage /
/// phase endpoints must name real endpoints and dirtiness dials real
/// seeding units of the paper's system landscape (checked against a live
/// Scenario, so the lists can never drift from the implementation).
class ScenarioManager {
 public:
  /// Loads one manifest file. Fails (naming the file) on unreadable
  /// files, JSON/schema errors, or a name collision with a manifest
  /// already loaded.
  Status LoadFile(const std::string& path);

  /// Loads every *.json in `dir`, in sorted filename order so the
  /// collection — and every report built from it — is stable across
  /// platforms. Fails on the first bad manifest.
  Status LoadDirectory(const std::string& dir);

  const std::vector<ScenarioManifest>& manifests() const {
    return manifests_;
  }

  /// Validates every manifest against the live system landscape: builds
  /// one Scenario and checks outage/phase endpoint names against its
  /// network and dirtiness sources against its database instances.
  Status ValidateLandscape() const;

  /// All manifests expanded to pooled RunSpecs, in load order.
  std::vector<harness::RunSpec> ExpandAll() const;

  /// Expands and executes everything through a RunnerPool with `jobs`
  /// workers (<= 0 = hardware concurrency, 1 = fully serial). Outcomes
  /// come back in ExpandAll() order.
  std::vector<harness::RunOutcome> RunAll(int jobs) const;

 private:
  std::vector<ScenarioManifest> manifests_;
};

}  // namespace scenario
}  // namespace dipbench

#endif  // DIPBENCH_SCENARIO_MANAGER_H_
