#ifndef DIPBENCH_SCENARIO_MANIFEST_H_
#define DIPBENCH_SCENARIO_MANIFEST_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/dipbench/config.h"
#include "src/harness/harness.h"

namespace dipbench {
namespace scenario {

/// A declarative workload description: one JSON file mapping onto a
/// ScaleConfig (plus its scenario extensions — traffic shapes, fault
/// composition, late-arrival windows, dirtiness dials) and an optional
/// engine list and one-knob sweep. See docs/SPECIFICATION.md §12 for the
/// schema and examples/scenarios/ for worked manifests.
///
/// Determinism contract: everything a manifest expresses lands inside the
/// ScaleConfig it expands to, so a manifest run is a pure function of
/// (manifest bytes, jobs count excluded). A manifest that sets only the
/// base config fields reproduces the compiled-in schedule byte for byte.
struct ScenarioManifest {
  /// Required. Unique within a manager; used in run labels.
  std::string name;
  std::string description;
  /// Where the manifest came from ("<inline>" or the file path) — every
  /// error message is prefixed with it.
  std::string origin;

  /// Engine realizations to expand over ("federated", "dataflow", "eai").
  /// Default: just "federated".
  std::vector<std::string> engines;

  /// The fully merged configuration (base fields + scenario extensions).
  ScaleConfig config;

  /// Optional one-knob sweep: `sweep_field` is a numeric ScaleConfig field
  /// name, `sweep_values` the values to expand over. Empty field = no
  /// sweep.
  std::string sweep_field;
  std::vector<double> sweep_values;

  /// Source positions of landscape-referencing entries, recorded while
  /// parsing so validation that happens AFTER parsing (the manager's
  /// ValidateLandscape checks names against a live Scenario) can still
  /// point at the offending line. Keys: "outage:<name>", "phase:<name>",
  /// "dirtiness:<source>"; values: "line L, column C".
  std::map<std::string, std::string> key_positions;

  /// Parses and validates a manifest from JSON text. Strict: unknown keys,
  /// type mismatches and out-of-range values are errors, each reporting
  /// `origin` plus the offending line and column.
  static Result<ScenarioManifest> FromJsonText(std::string_view text,
                                               const std::string& origin);

  /// Reads `path` and parses it (origin = path).
  static Result<ScenarioManifest> Load(const std::string& path);

  /// Expands engines x sweep values into pooled RunSpecs. Labels read
  /// "<name>[/<engine>][ <field>=<value>]" — the engine only when more
  /// than one is listed, the assignment only when sweeping.
  std::vector<harness::RunSpec> Expand() const;
};

/// Applies one sweep assignment onto a config. Shared by Expand() and the
/// manifest validator so both agree on the set of sweepable fields:
/// datasize, time_scale, periods, seed, worker_slots, workers,
/// memory_budget, error_rate, fault_rate.
Status ApplySweepValue(const std::string& field, double value,
                       ScaleConfig* config);

}  // namespace scenario
}  // namespace dipbench

#endif  // DIPBENCH_SCENARIO_MANIFEST_H_
