#include "src/scenario/manifest.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/json.h"
#include "src/common/string_util.h"
#include "src/net/fault.h"

namespace dipbench {
namespace scenario {

namespace {

/// Strict, line-anchored manifest reader. Every rejection names the
/// origin, the position of the offending value, and what was expected —
/// the schema is the error messages.
class ManifestReader {
 public:
  explicit ManifestReader(const std::string& origin) : origin_(origin) {}

  Status Read(const json::Value& root, ScenarioManifest* out) {
    out_ = out;
    if (!root.is_object()) {
      return Err(root, "manifest must be a JSON object, got " +
                           std::string(root.TypeName()));
    }
    for (const auto& [key, value] : root.members) {
      if (key == "name") {
        DIP_ASSIGN_OR_RETURN(out->name, Str(value, "name"));
      } else if (key == "description") {
        DIP_ASSIGN_OR_RETURN(out->description, Str(value, "description"));
      } else if (key == "engine") {
        DIP_ASSIGN_OR_RETURN(std::string engine, Str(value, "engine"));
        DIP_RETURN_NOT_OK(CheckEngine(value, engine));
        out->engines.push_back(engine);
      } else if (key == "engines") {
        if (!value.is_array()) return Expected(value, "engines", "an array");
        for (const json::Value& item : value.items) {
          DIP_ASSIGN_OR_RETURN(std::string engine, Str(item, "engines entry"));
          DIP_RETURN_NOT_OK(CheckEngine(item, engine));
          out->engines.push_back(engine);
        }
        if (out->engines.empty()) {
          return Err(value, "'engines' must list at least one engine");
        }
      } else if (key == "config") {
        DIP_RETURN_NOT_OK(ReadConfig(value, &out->config));
      } else if (key == "traffic") {
        DIP_RETURN_NOT_OK(ReadTraffic(value, &out->config));
      } else if (key == "faults") {
        DIP_RETURN_NOT_OK(ReadFaults(value, &out->config));
      } else if (key == "dirtiness") {
        DIP_RETURN_NOT_OK(ReadDirtiness(value, &out->config));
      } else if (key == "sweep") {
        DIP_RETURN_NOT_OK(ReadSweep(value, out));
      } else {
        return Err(value, "unknown manifest key '" + key + "'");
      }
    }
    if (out->name.empty()) {
      return Status::InvalidArgument(
          origin_ + ": manifest is missing the required 'name' key");
    }
    std::set<std::string> seen(out->engines.begin(), out->engines.end());
    if (seen.size() != out->engines.size()) {
      return Status::InvalidArgument(origin_ + ": manifest '" + out->name +
                                     "' lists an engine twice");
    }
    if (out->engines.empty()) out->engines.push_back("federated");
    return Status::OK();
  }

 private:
  Status Err(const json::Value& v, const std::string& msg) const {
    return Status::InvalidArgument(origin_ + ": " + v.Where() + ": " + msg);
  }
  Status Expected(const json::Value& v, const std::string& what,
                  const std::string& kind) const {
    return Err(v, "'" + what + "' must be " + kind + ", got " +
                      std::string(v.TypeName()));
  }

  Result<std::string> Str(const json::Value& v, const std::string& what) const {
    if (!v.is_string()) return Expected(v, what, "a string");
    return v.string_value;
  }
  Result<double> Num(const json::Value& v, const std::string& what) const {
    if (!v.is_number()) return Expected(v, what, "a number");
    return v.number_value;
  }
  Result<bool> Bool(const json::Value& v, const std::string& what) const {
    if (!v.is_bool()) return Expected(v, what, "a boolean");
    return v.bool_value;
  }
  Result<int> Int(const json::Value& v, const std::string& what) const {
    DIP_ASSIGN_OR_RETURN(double d, Num(v, what));
    if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
      return Err(v, "'" + what + "' must be an integer");
    }
    return static_cast<int>(d);
  }
  Result<uint64_t> Uint64(const json::Value& v, const std::string& what) const {
    DIP_ASSIGN_OR_RETURN(double d, Num(v, what));
    if (d != std::floor(d) || d < 0.0 || d > 9007199254740992.0) {
      return Err(v, "'" + what + "' must be a non-negative integer");
    }
    return static_cast<uint64_t>(d);
  }
  Result<double> Fraction(const json::Value& v, const std::string& what) const {
    DIP_ASSIGN_OR_RETURN(double d, Num(v, what));
    if (d < 0.0 || d > 1.0) {
      return Err(v, "'" + what + "' must be in [0, 1]");
    }
    return d;
  }
  Result<double> Positive(const json::Value& v, const std::string& what) const {
    DIP_ASSIGN_OR_RETURN(double d, Num(v, what));
    if (d <= 0.0) return Err(v, "'" + what + "' must be > 0");
    return d;
  }
  Result<double> NonNegative(const json::Value& v,
                             const std::string& what) const {
    DIP_ASSIGN_OR_RETURN(double d, Num(v, what));
    if (d < 0.0) return Err(v, "'" + what + "' must be >= 0");
    return d;
  }

  Status CheckEngine(const json::Value& v, const std::string& engine) const {
    if (engine == "federated" || engine == "dataflow" || engine == "eai") {
      return Status::OK();
    }
    return Err(v, "unknown engine '" + engine +
                      "' (expected federated, dataflow or eai)");
  }

  Status ReadConfig(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "config", "an object");
    for (const auto& [key, value] : v.members) {
      if (key == "datasize") {
        DIP_ASSIGN_OR_RETURN(config->datasize, Positive(value, key));
      } else if (key == "time_scale") {
        DIP_ASSIGN_OR_RETURN(config->time_scale, Positive(value, key));
      } else if (key == "distribution") {
        DIP_ASSIGN_OR_RETURN(std::string dist, Str(value, key));
        if (dist == "uniform") {
          config->distribution = Distribution::kUniform;
        } else if (dist == "zipf") {
          config->distribution = Distribution::kZipf;
        } else if (dist == "normal") {
          config->distribution = Distribution::kNormal;
        } else {
          return Err(value, "unknown distribution '" + dist +
                                "' (expected uniform, zipf or normal)");
        }
      } else if (key == "error_rate") {
        DIP_ASSIGN_OR_RETURN(config->error_rate, Fraction(value, key));
      } else if (key == "periods") {
        DIP_ASSIGN_OR_RETURN(int periods, Int(value, key));
        if (periods < 1) return Err(value, "'periods' must be >= 1");
        config->periods = periods;
      } else if (key == "seed") {
        DIP_ASSIGN_OR_RETURN(config->seed, Uint64(value, key));
      } else if (key == "worker_slots") {
        DIP_ASSIGN_OR_RETURN(int slots, Int(value, key));
        if (slots < 1) return Err(value, "'worker_slots' must be >= 1");
        config->worker_slots = slots;
      } else if (key == "workers") {
        DIP_ASSIGN_OR_RETURN(int workers, Int(value, key));
        if (workers < 1) return Err(value, "'workers' must be >= 1");
        config->workers = workers;
      } else if (key == "fault_rate") {
        DIP_ASSIGN_OR_RETURN(config->fault_rate, Fraction(value, key));
      } else if (key == "fault_spike_rate") {
        DIP_ASSIGN_OR_RETURN(config->fault_spike_rate, Fraction(value, key));
      } else if (key == "fault_spike_tu") {
        DIP_ASSIGN_OR_RETURN(config->fault_spike_tu, NonNegative(value, key));
      } else if (key == "retry_max_attempts") {
        DIP_ASSIGN_OR_RETURN(int attempts, Int(value, key));
        if (attempts < 1) return Err(value, "'retry_max_attempts' must be >= 1");
        config->retry_max_attempts = attempts;
      } else if (key == "retry_backoff_tu") {
        DIP_ASSIGN_OR_RETURN(config->retry_backoff_tu, NonNegative(value, key));
      } else if (key == "retry_backoff_factor") {
        DIP_ASSIGN_OR_RETURN(config->retry_backoff_factor,
                             Positive(value, key));
      } else if (key == "instance_timeout_tu") {
        DIP_ASSIGN_OR_RETURN(config->instance_timeout_tu,
                             NonNegative(value, key));
      } else if (key == "retry_dead_letter") {
        DIP_ASSIGN_OR_RETURN(config->retry_dead_letter, Bool(value, key));
      } else if (key == "datagen_jobs") {
        DIP_ASSIGN_OR_RETURN(int jobs, Int(value, key));
        if (jobs < 1) return Err(value, "'datagen_jobs' must be >= 1");
        config->datagen_jobs = jobs;
      } else if (key == "memory_budget") {
        DIP_ASSIGN_OR_RETURN(uint64_t bytes, Uint64(value, key));
        config->operator_memory_budget = static_cast<size_t>(bytes);
      } else if (key == "realization") {
        DIP_ASSIGN_OR_RETURN(std::string name, Str(value, key));
        Result<Realization> parsed = ParseRealization(name);
        if (!parsed.ok()) return Err(value, parsed.status().message());
        config->realization = *parsed;
      } else {
        return Err(value, "unknown config key '" + key + "'");
      }
    }
    return Status::OK();
  }

  Status ReadTraffic(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "traffic", "an object");
    for (const auto& [stream, shape_value] : v.members) {
      if (stream != "A" && stream != "B") {
        return Err(shape_value,
                   "unknown traffic stream '" + stream +
                       "' (only streams A and B carry E1 series)");
      }
      TrafficShape shape;
      DIP_RETURN_NOT_OK(ReadShape(shape_value, stream, &shape));
      config->traffic[stream] = shape;
    }
    return Status::OK();
  }

  Status ReadShape(const json::Value& v, const std::string& stream,
                   TrafficShape* shape) {
    if (!v.is_object()) return Expected(v, "traffic." + stream, "an object");
    for (const auto& [key, value] : v.members) {
      if (key == "shape") {
        DIP_ASSIGN_OR_RETURN(std::string kind, Str(value, key));
        if (kind == "steady") {
          shape->kind = TrafficShape::Kind::kSteady;
        } else if (kind == "burst") {
          shape->kind = TrafficShape::Kind::kBurst;
        } else if (kind == "flash_sale") {
          shape->kind = TrafficShape::Kind::kFlashSale;
        } else if (kind == "ramp") {
          shape->kind = TrafficShape::Kind::kRamp;
        } else {
          return Err(value,
                     "unknown traffic shape '" + kind +
                         "' (expected steady, burst, flash_sale or ramp)");
        }
      } else if (key == "scale") {
        DIP_ASSIGN_OR_RETURN(shape->scale, NonNegative(value, key));
      } else if (key == "amplitude") {
        DIP_ASSIGN_OR_RETURN(shape->amplitude, NonNegative(value, key));
      } else if (key == "burst_probability") {
        DIP_ASSIGN_OR_RETURN(shape->burst_probability, Fraction(value, key));
      } else if (key == "spike_period") {
        DIP_ASSIGN_OR_RETURN(shape->spike_period, Int(value, key));
        if (shape->spike_period < 0) {
          return Err(value, "'spike_period' must be >= 0");
        }
      } else if (key == "ramp_to") {
        DIP_ASSIGN_OR_RETURN(shape->ramp_to, NonNegative(value, key));
      } else if (key == "late_fraction") {
        DIP_ASSIGN_OR_RETURN(shape->late_fraction, Fraction(value, key));
      } else if (key == "late_delay_tu") {
        DIP_ASSIGN_OR_RETURN(shape->late_delay_tu, NonNegative(value, key));
      } else {
        return Err(value, "unknown traffic shape key '" + key + "'");
      }
    }
    return Status::OK();
  }

  Status ReadFaults(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "faults", "an object");
    for (const auto& [key, value] : v.members) {
      if (key == "outages") {
        if (!value.is_array()) return Expected(value, key, "an array");
        for (const json::Value& item : value.items) {
          DIP_RETURN_NOT_OK(ReadOutage(item, config));
        }
      } else if (key == "phases") {
        if (!value.is_array()) return Expected(value, key, "an array");
        for (const json::Value& item : value.items) {
          DIP_RETURN_NOT_OK(ReadPhase(item, config));
        }
      } else {
        return Err(value, "unknown faults key '" + key +
                              "' (expected outages or phases)");
      }
    }
    return Status::OK();
  }

  Status ReadOutage(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "outage", "an object");
    OutageWindow outage;
    bool have_calls = false;
    for (const auto& [key, value] : v.members) {
      if (key == "name") {
        DIP_ASSIGN_OR_RETURN(outage.name, Str(value, key));
      } else if (key == "endpoint") {
        DIP_ASSIGN_OR_RETURN(outage.endpoint, Str(value, key));
      } else if (key == "after_calls") {
        DIP_ASSIGN_OR_RETURN(outage.after_calls, Uint64(value, key));
      } else if (key == "calls") {
        DIP_ASSIGN_OR_RETURN(outage.calls, Uint64(value, key));
        have_calls = true;
      } else {
        return Err(value, "unknown outage key '" + key + "'");
      }
    }
    if (outage.name.empty()) {
      return Err(v, "outage is missing the required 'name' key");
    }
    if (!have_calls || outage.calls == 0) {
      return Err(v, "outage '" + outage.name + "' must set 'calls' > 0");
    }
    // A FaultProfile holds exactly one outage window, so two outages on
    // the same profile (same endpoint, or both default-scoped) can never
    // compile. Rejecting here — with the second outage's position —
    // instead of at the scratch-compile gives the error a line:column.
    for (const OutageWindow& existing : config->outages) {
      if (existing.endpoint == outage.endpoint) {
        std::string profile =
            outage.endpoint.empty()
                ? "the default profile"
                : "endpoint '" + outage.endpoint + "'";
        return Err(v, "outage '" + outage.name +
                          "': overlapping outage windows — " + profile +
                          " already has an outage window from '" +
                          existing.name + "'");
      }
    }
    out_->key_positions["outage:" + outage.name] = v.Where();
    config->outages.push_back(std::move(outage));
    return Status::OK();
  }

  Status ReadPhase(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "phase", "an object");
    ErrorPhaseSpec phase;
    bool have_calls = false, have_rate = false;
    for (const auto& [key, value] : v.members) {
      if (key == "name") {
        DIP_ASSIGN_OR_RETURN(phase.name, Str(value, key));
      } else if (key == "endpoint") {
        DIP_ASSIGN_OR_RETURN(phase.endpoint, Str(value, key));
      } else if (key == "after_calls") {
        DIP_ASSIGN_OR_RETURN(phase.after_calls, Uint64(value, key));
      } else if (key == "calls") {
        DIP_ASSIGN_OR_RETURN(phase.calls, Uint64(value, key));
        have_calls = true;
      } else if (key == "error_rate") {
        DIP_ASSIGN_OR_RETURN(phase.error_rate, Fraction(value, key));
        have_rate = true;
      } else {
        return Err(value, "unknown phase key '" + key + "'");
      }
    }
    if (phase.name.empty()) {
      return Err(v, "phase is missing the required 'name' key");
    }
    if (!have_calls || phase.calls == 0) {
      return Err(v, "phase '" + phase.name + "' must set 'calls' > 0");
    }
    if (!have_rate) {
      return Err(v, "phase '" + phase.name + "' must set 'error_rate'");
    }
    out_->key_positions["phase:" + phase.name] = v.Where();
    config->error_phases.push_back(std::move(phase));
    return Status::OK();
  }

  Status ReadDirtiness(const json::Value& v, ScaleConfig* config) {
    if (!v.is_object()) return Expected(v, "dirtiness", "an object");
    for (const auto& [source, value] : v.members) {
      DIP_ASSIGN_OR_RETURN(double rate, Fraction(value, "dirtiness rate"));
      out_->key_positions["dirtiness:" + source] = value.Where();
      config->source_error_rates[source] = rate;
    }
    return Status::OK();
  }

  Status ReadSweep(const json::Value& v, ScenarioManifest* out) {
    if (!v.is_object()) return Expected(v, "sweep", "an object");
    const json::Value* values = nullptr;
    for (const auto& [key, value] : v.members) {
      if (key == "field") {
        DIP_ASSIGN_OR_RETURN(out->sweep_field, Str(value, key));
      } else if (key == "values") {
        if (!value.is_array()) return Expected(value, key, "an array");
        values = &value;
      } else {
        return Err(value, "unknown sweep key '" + key +
                              "' (expected field and values)");
      }
    }
    if (out->sweep_field.empty()) {
      return Err(v, "sweep is missing the required 'field' key");
    }
    if (values == nullptr || values->items.empty()) {
      return Err(v, "sweep must list at least one value");
    }
    for (const json::Value& item : values->items) {
      DIP_ASSIGN_OR_RETURN(double d, Num(item, "sweep value"));
      // Dry-apply onto a scratch config so a bad field name or value is a
      // load error with a position, not a surprise mid-sweep.
      ScaleConfig scratch = out->config;
      Status applied = ApplySweepValue(out->sweep_field, d, &scratch);
      if (!applied.ok()) return Err(item, applied.message());
      out->sweep_values.push_back(d);
    }
    return Status::OK();
  }

  const std::string origin_;
  ScenarioManifest* out_ = nullptr;  ///< set by Read for the duration
};

}  // namespace

Status ApplySweepValue(const std::string& field, double value,
                       ScaleConfig* config) {
  auto integral = [&](int min) -> Result<int> {
    if (value != std::floor(value) || value < min || value > 2147483647.0) {
      return Status::InvalidArgument(StrFormat(
          "sweep value %g for '%s' must be an integer >= %d", value,
          field.c_str(), min));
    }
    return static_cast<int>(value);
  };
  if (field == "datasize" || field == "time_scale") {
    if (value <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("sweep value %g for '%s' must be > 0", value,
                    field.c_str()));
    }
    (field == "datasize" ? config->datasize : config->time_scale) = value;
    return Status::OK();
  }
  if (field == "error_rate" || field == "fault_rate") {
    if (value < 0.0 || value > 1.0) {
      return Status::InvalidArgument(
          StrFormat("sweep value %g for '%s' must be in [0, 1]", value,
                    field.c_str()));
    }
    (field == "error_rate" ? config->error_rate : config->fault_rate) = value;
    return Status::OK();
  }
  if (field == "periods") {
    DIP_ASSIGN_OR_RETURN(config->periods, integral(1));
    return Status::OK();
  }
  if (field == "worker_slots") {
    DIP_ASSIGN_OR_RETURN(config->worker_slots, integral(1));
    return Status::OK();
  }
  if (field == "workers") {
    DIP_ASSIGN_OR_RETURN(config->workers, integral(1));
    return Status::OK();
  }
  if (field == "seed") {
    if (value != std::floor(value) || value < 0.0 ||
        value > 9007199254740992.0) {
      return Status::InvalidArgument(
          StrFormat("sweep value %g for 'seed' must be a non-negative "
                    "integer", value));
    }
    config->seed = static_cast<uint64_t>(value);
    return Status::OK();
  }
  if (field == "memory_budget") {
    if (value != std::floor(value) || value < 0.0 ||
        value > 9007199254740992.0) {
      return Status::InvalidArgument(
          StrFormat("sweep value %g for 'memory_budget' must be a "
                    "non-negative integer", value));
    }
    // Sweeping the budget is a pure execution-dial sweep: every point is
    // required (and tested) to produce byte-identical outputs.
    config->operator_memory_budget = static_cast<size_t>(value);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown sweep field '" + field +
      "' (expected datasize, time_scale, periods, seed, worker_slots, "
      "workers, memory_budget, error_rate or fault_rate)");
}

Result<ScenarioManifest> ScenarioManifest::FromJsonText(
    std::string_view text, const std::string& origin) {
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(origin + ": " +
                                   parsed.status().message());
  }
  ScenarioManifest manifest;
  manifest.origin = origin;
  DIP_RETURN_NOT_OK(ManifestReader(origin).Read(*parsed, &manifest));
  // Compile the fault composition once against a scratch plan: double
  // outage windows on one profile are a load error, not a run error.
  net::FaultPlan scratch = net::FaultPlan::Uniform(manifest.config.fault_rate);
  Status compiled = manifest.config.CompileFaultPlan(&scratch);
  if (!compiled.ok()) {
    return Status::InvalidArgument(origin + ": manifest '" + manifest.name +
                                   "': " + compiled.message());
  }
  return manifest;
}

Result<ScenarioManifest> ScenarioManifest::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read scenario manifest '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJsonText(buffer.str(), path);
}

std::vector<harness::RunSpec> ScenarioManifest::Expand() const {
  std::vector<std::string> engine_list = engines;
  if (engine_list.empty()) engine_list.push_back("federated");

  std::vector<harness::RunSpec> specs;
  for (const std::string& engine : engine_list) {
    std::string base_label = name;
    if (engine_list.size() > 1) base_label += "/" + engine;
    if (sweep_field.empty()) {
      harness::RunSpec spec;
      spec.config = config;
      spec.engine = engine;
      spec.label = base_label;
      specs.push_back(std::move(spec));
      continue;
    }
    for (double value : sweep_values) {
      harness::RunSpec spec;
      spec.config = config;
      // Values were dry-applied at load time; a failure here would mean
      // the manifest was mutated after parsing.
      Status applied = ApplySweepValue(sweep_field, value, &spec.config);
      if (!applied.ok()) continue;
      spec.engine = engine;
      spec.label = base_label + " " + sweep_field + "=" +
                   StrFormat("%g", value);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace scenario
}  // namespace dipbench
